#include "st/st.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/serialize.h"

namespace dash::st {
namespace {

/// The control channel: two low-capacity, low-delay network RMS (§3.2).
rms::Request control_channel_request() {
  rms::Params desired;
  desired.capacity = 4096;
  desired.max_message_size = 256;
  desired.delay.type = rms::BoundType::kBestEffort;
  desired.delay.a = msec(2);
  desired.delay.b_per_byte = usec(2);
  desired.bit_error_rate = 1e-9;  // want integrity on control traffic

  rms::Params acceptable = desired;
  acceptable.delay.a = sec(2);
  acceptable.delay.b_per_byte = usec(200);
  acceptable.bit_error_rate = 0.1;
  return rms::Request{desired, acceptable};
}

std::uint64_t component_nonce(std::uint64_t st_id, std::uint64_t seq,
                              std::uint16_t frag_index) {
  return (st_id << 40) ^ (seq << 8) ^ frag_index;
}

}  // namespace

// ===================================================================== StRms

StRms::~StRms() {
  if (st_ != nullptr) st_->release_stream(*this);
}

Status StRms::do_send(rms::Message msg, Time transmission_deadline) {
  (void)transmission_deadline;  // the ST derives deadlines from the bounds
  if (st_ == nullptr) return make_error(Errc::kClosed, "subtransport destroyed");
  return st_->submit(*this, std::move(msg), 0, false);
}

Status StRms::send_acked(rms::Message msg, std::uint64_t ack_id) {
  if (st_ == nullptr) return make_error(Errc::kClosed, "subtransport destroyed");
  if (closed()) return make_error(Errc::kClosed, "send on closed RMS");
  if (failed()) return make_error(Errc::kRmsFailed, "send on failed RMS");
  if (msg.size() > params().max_message_size) {
    return make_error(Errc::kMessageTooLarge, "message exceeds ST maximum");
  }
  return st_->submit(*this, std::move(msg), ack_id, true);
}

void StRms::do_close() {
  if (st_ != nullptr) st_->release_stream(*this);
}

// ======================================================== SubtransportLayer

SubtransportLayer::SubtransportLayer(sim::Simulator& sim, HostId host,
                                     sim::CpuScheduler& cpu, rms::PortRegistry& ports,
                                     StConfig config)
    : sim_(sim), host_(host), cpu_(cpu), ports_(ports), config_(config) {
  ports_.bind(kControlPort, &control_port_);
  ports_.bind(kDataPort, &data_port_);
  control_port_.set_handler([this](rms::Message m) { on_control_message(std::move(m)); });
  data_port_.set_handler([this](rms::Message m) { on_data_message(std::move(m)); });
}

SubtransportLayer::~SubtransportLayer() {
  ports_.unbind(kControlPort);
  ports_.unbind(kDataPort);
  for (auto& [id, rms] : streams_) {
    (void)id;
    rms->st_ = nullptr;
  }
  // Cancel every outstanding timer: their closures capture `this` and must
  // not survive the layer.
  for (auto& [id, ch] : channels_) {
    (void)id;
    cancel_channel_timers(*ch);
  }
  for (auto& [host, ps] : peers_) {
    (void)host;
    for (auto& [req_id, pr] : ps.pending_replies) {
      (void)req_id;
      sim_.cancel(pr.retry_timer);
    }
  }
  sim_.cancel(graveyard_timer_);
}

void SubtransportLayer::add_network(netrms::NetRmsFabric& fabric) {
  fabrics_.push_back(&fabric);
}

void SubtransportLayer::set_metrics(telemetry::MetricsRegistry* m) {
  if (m == nullptr) {
    delivery_delay_hist_ = nullptr;
    fast_ack_rtt_hist_ = nullptr;
    return;
  }
  const std::string prefix = "st." + std::to_string(host_) + ".";
  delivery_delay_hist_ = &m->histogram(prefix + "delivery_ns");
  fast_ack_rtt_hist_ = &m->histogram(prefix + "fast_ack_rtt_ns");
}

netrms::NetRmsFabric* SubtransportLayer::fabric_for(HostId peer) const {
  // Used for the control channel: prefer a trusted network where the
  // authentication handshake is elided (§2.5 case 3); otherwise the first
  // network that reaches the peer.
  netrms::NetRmsFabric* first = nullptr;
  for (netrms::NetRmsFabric* f : fabrics_) {
    if (!f->network().attached(peer)) continue;
    if (f->traits().trusted) return f;
    if (first == nullptr) first = f;
  }
  return first;
}

std::size_t SubtransportLayer::active_channels() const {
  std::size_t n = 0;
  for (const auto& [id, ch] : channels_) {
    (void)id;
    if (!ch->cached) ++n;
  }
  return n;
}

std::size_t SubtransportLayer::cached_channels() const {
  return channels_.size() - active_channels();
}

// ------------------------------------------------------------- negotiation

Result<SubtransportLayer::StParamsPlan> SubtransportLayer::plan_params(
    netrms::NetRmsFabric& fabric, const rms::Request& request) const {
  if (!rms::well_formed(request.acceptable)) {
    return make_error(Errc::kIncompatibleParams, "malformed acceptable parameters");
  }

  const auto& traits = fabric.traits();
  const netrms::CostModel& cost = fabric.cost();
  const Time window = config_.enable_piggybacking ? config_.piggyback_window : 0;
  const Time stage = config_.cpu_stage_allowance;

  StParamsPlan plan;

  // Security elision (§2.5): apply software mechanisms only when the
  // network does not provide the property.
  const bool net_privacy = traits.trusted || traits.link_encryption;
  const bool net_auth = traits.trusted;
  const bool want_privacy =
      request.desired.quality.privacy || request.acceptable.quality.privacy;
  const bool want_auth =
      request.desired.quality.authenticated || request.acceptable.quality.authenticated;
  if (want_privacy && !net_privacy) plan.security |= kEncrypted;
  if (want_auth && !net_auth) plan.security |= kMac;

  const bool encrypts = (plan.security & kEncrypted) != 0;
  const bool macs = (plan.security & kMac) != 0;
  // Per-byte CPU charged at both ends of the ST stage.
  const Time cpu_b = 2 * (cost.per_byte_copy + (encrypts ? cost.per_byte_crypto : 0) +
                          (macs ? cost.per_byte_mac : 0));

  // Derive the network RMS request: the ST consumes (window + 2 stages) of
  // the fixed delay budget and cpu_b of the per-byte budget; the network
  // need not provide security (the ST will); the network should offer its
  // largest frame (the ST fragments above it).
  //
  // Delay allocation differs by bound type. A deterministic stream needs
  // the network to *reserve* for the client's bound, so the derived bound
  // is passed down. Statistical and best-effort streams instead ask for
  // the network's floor and keep the slack at the ST: the slack then
  // appears in each message's transmission deadline (§4.3.1), which is
  // what lets deadline-ordered queues favor urgent streams over lazy ones.
  const bool deterministic = request.desired.delay.type == rms::BoundType::kDeterministic;
  rms::Request net_req = request;
  for (rms::Params* p : {&net_req.desired, &net_req.acceptable}) {
    const bool is_acceptable = p == &net_req.acceptable;
    p->quality.privacy = is_acceptable ? false : (p->quality.privacy && net_privacy);
    p->quality.authenticated =
        is_acceptable ? false : (p->quality.authenticated && net_auth);
    if (is_acceptable) {
      p->delay.a = p->delay.a == kTimeNever
                       ? kTimeNever
                       : std::max<Time>(p->delay.a - window - 2 * stage, 1);
      p->delay.b_per_byte = std::max<Time>(p->delay.b_per_byte - cpu_b, 0);
    } else if (deterministic) {
      p->delay.a = p->delay.a == kTimeNever
                       ? kTimeNever
                       : std::max<Time>(p->delay.a - window - 2 * stage, 0);
      p->delay.b_per_byte = std::max<Time>(p->delay.b_per_byte - cpu_b, 0);
    } else {
      p->delay.a = 0;          // negotiate clamps to the network floor
      p->delay.b_per_byte = 0;
    }
    p->max_message_size = is_acceptable ? 1 : 0;  // "whatever you can give"
    p->capacity = std::max<std::uint64_t>(p->capacity, 1);
    if (!is_acceptable && !deterministic) {
      // Provision headroom so later ST RMS can multiplex onto this network
      // RMS (§4.2: its capacity must cover the sum of the ST capacities).
      // Deterministic capacity is reserved end to end, so it is requested
      // exactly — over-asking would waste admission budget.
      p->capacity *= std::max<std::uint64_t>(config_.mux_provision_factor, 1);
    }
  }
  if (request.acceptable.delay.a != kTimeNever &&
      request.acceptable.delay.a <= window + 2 * stage) {
    return make_error(Errc::kIncompatibleParams,
                      "acceptable delay bound smaller than ST processing budget");
  }

  auto negotiated = fabric.negotiate(net_req);
  if (!negotiated) return negotiated.error();
  const rms::Params net = std::move(negotiated).value();

  // Assemble the actual ST parameters on top of the network RMS.
  rms::Params actual;
  actual.quality.privacy = want_privacy;
  actual.quality.authenticated = want_auth;
  actual.quality.reliable = request.desired.quality.reliable && net.quality.reliable;
  if (request.acceptable.quality.reliable && !net.quality.reliable) {
    return make_error(Errc::kIncompatibleParams,
                      "reliable ST RMS needs a reliable network RMS; use a "
                      "transport protocol for reliability on this network");
  }

  actual.max_message_size = request.desired.max_message_size != 0
                                ? std::min<std::uint64_t>(request.desired.max_message_size,
                                                          config_.max_message_size)
                                : config_.max_message_size;
  // An ST RMS's capacity is backed by (a share of) the network RMS's
  // capacity: promising more would void the no-overrun property that
  // capacity exists to provide (§4.4).
  actual.capacity = request.desired.capacity != 0 ? request.desired.capacity
                                                  : actual.max_message_size;
  actual.capacity = std::min(actual.capacity, net.capacity);
  if (actual.capacity < request.acceptable.capacity) {
    return make_error(Errc::kIncompatibleParams,
                      "network capacity cannot back the acceptable ST capacity");
  }
  actual.max_message_size = std::min(actual.max_message_size, actual.capacity);

  actual.delay.type = net.delay.type;
  // Keep the client's requested bound when it is looser than what the
  // stack needs: the difference is per-message scheduling slack.
  const Time floor_a = net.delay.a == kTimeNever ? kTimeNever
                                                 : net.delay.a + window + 2 * stage;
  actual.delay.a = request.desired.delay.a == kTimeNever
                       ? floor_a
                       : std::max(request.desired.delay.a, floor_a);
  actual.delay.b_per_byte =
      std::max(request.desired.delay.b_per_byte, net.delay.b_per_byte + cpu_b);
  actual.statistical = request.desired.statistical;

  // Fragmented messages are lost if any fragment is lost (§4.3: no
  // fragment retransmission), so the ST error rate compounds.
  const std::size_t frag_payload =
      net.max_message_size > kEnvelopeBytes + component_bytes(0, plan.security | kFragment)
          ? net.max_message_size - kEnvelopeBytes -
                component_bytes(0, plan.security | kFragment)
          : 1;
  const double fragments =
      std::ceil(static_cast<double>(actual.max_message_size) /
                static_cast<double>(frag_payload));
  actual.bit_error_rate =
      1.0 - std::pow(1.0 - std::min(net.bit_error_rate, 1.0), std::max(1.0, fragments));

  if (!rms::compatible(actual, request.acceptable)) {
    return make_error(Errc::kIncompatibleParams,
                      "achievable ST parameters (" + rms::to_string(actual) +
                          ") incompatible with acceptable set");
  }

  plan.actual = actual;
  plan.net_request = net_req;
  return plan;
}

// ------------------------------------------------------------------ create

Result<std::unique_ptr<rms::Rms>> SubtransportLayer::create(const rms::Request& request,
                                                            const Label& target) {
  // §3.1 allows multiple network types; rank the viable ones by how much
  // software machinery each needs (§2.5: "the optimal mechanism is used" —
  // a network providing privacy/authentication natively beats one where
  // the ST must encrypt and MAC), breaking ties with the observer's live
  // health penalty, then registration order. Candidates are then tried in
  // rank order: a network whose admission control rejects the stream falls
  // through to the next one instead of failing the creation.
  struct Candidate {
    netrms::NetRmsFabric* fabric;
    StParamsPlan plan;
    int mechanisms;
    double penalty;
  };
  std::vector<Candidate> candidates;
  Error last_error = make_error(
      Errc::kNoRoute, "no attached network reaches host " + std::to_string(target.host));
  for (netrms::NetRmsFabric* candidate : fabrics_) {
    if (!candidate->network().attached(target.host)) continue;
    if (candidate->network().down()) continue;
    auto attempt = plan_params(*candidate, request);
    if (!attempt) {
      last_error = attempt.error();
      continue;
    }
    StParamsPlan plan = std::move(attempt).value();
    const int mechanisms = static_cast<int>((plan.security & kEncrypted) != 0) +
                           static_cast<int>((plan.security & kMac) != 0);
    const double penalty =
        observer_ != nullptr ? observer_->fabric_penalty(target.host, *candidate) : 0.0;
    candidates.push_back(Candidate{candidate, std::move(plan), mechanisms, penalty});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.mechanisms != b.mechanisms) return a.mechanisms < b.mechanisms;
                     return a.penalty < b.penalty;
                   });

  for (Candidate& c : candidates) {
    auto channel = obtain_channel(target.host, *c.fabric, c.plan);
    if (!channel) {
      last_error = channel.error();
      continue;
    }
    const std::uint64_t id = next_st_id_++;
    auto handle = std::unique_ptr<StRms>(new StRms(*this, id, target.host,
                                                   c.plan.actual, target,
                                                   c.plan.security, request));
    handle->channel_id_ = channel.value()->id;
    streams_[id] = handle.get();
    ++stats_.st_rms_created;
    trace("st.create",
          "stream " + std::to_string(id) + " -> " + rms::to_string(target) + " [" +
              rms::to_string(handle->params()) + "] via " +
              c.fabric->traits().name);

    establish(*handle);
    if (observer_ != nullptr) observer_->on_stream_created(*handle);
    return std::unique_ptr<rms::Rms>(std::move(handle));
  }
  ++stats_.st_rms_rejected;
  return last_error;
}

Result<std::unique_ptr<rms::Rms>> SubtransportLayer::create_on(
    netrms::NetRmsFabric& fabric, const rms::Request& request, const Label& target) {
  if (!fabric.network().attached(target.host)) {
    ++stats_.st_rms_rejected;
    return make_error(Errc::kNoRoute, "pinned network does not reach host " +
                                          std::to_string(target.host));
  }
  if (fabric.network().down()) {
    ++stats_.st_rms_rejected;
    return make_error(Errc::kNoRoute,
                      "pinned network " + fabric.traits().name + " is down");
  }
  auto plan = plan_params(fabric, request);
  if (!plan) {
    ++stats_.st_rms_rejected;
    return plan.error();
  }
  auto channel = obtain_channel(target.host, fabric, plan.value());
  if (!channel) {
    ++stats_.st_rms_rejected;
    return channel.error();
  }
  const std::uint64_t id = next_st_id_++;
  auto handle = std::unique_ptr<StRms>(new StRms(*this, id, target.host,
                                                 plan.value().actual, target,
                                                 plan.value().security, request));
  handle->channel_id_ = channel.value()->id;
  streams_[id] = handle.get();
  ++stats_.st_rms_created;
  trace("st.create", "stream " + std::to_string(id) + " -> " +
                         rms::to_string(target) + " pinned to " +
                         fabric.traits().name);
  establish(*handle);
  if (observer_ != nullptr) observer_->on_stream_created(*handle);
  return std::unique_ptr<rms::Rms>(std::move(handle));
}

Result<SubtransportLayer::Channel*> SubtransportLayer::obtain_channel(
    HostId peer, netrms::NetRmsFabric& fabric, const StParamsPlan& plan) {
  // §4.2 multiplexing rules: reuse an active channel whose actual network
  // parameters are compatible with what we would otherwise request, and
  // whose capacity can absorb this ST RMS.
  for (auto& [id, ch] : channels_) {
    (void)id;
    if (ch->peer != peer || ch->cached || ch->fabric != &fabric) continue;
    if (ch->net_rms == nullptr || ch->net_rms->failed()) continue;  // dead channel
    if (!rms::compatible(ch->net_params, plan.net_request.acceptable)) continue;
    if (ch->capacity_used + plan.actual.capacity > ch->net_params.capacity) continue;
    ++ch->ref_count;
    ch->capacity_used += plan.actual.capacity;
    ++stats_.mux_joins;
    trace("st.channel", "mux join onto channel " + std::to_string(ch->id));
    return ch.get();
  }

  // §4.2 caching: reclaim an idle network RMS instead of creating one.
  for (auto& [id, ch] : channels_) {
    (void)id;
    if (ch->peer != peer || !ch->cached || ch->fabric != &fabric) continue;
    if (ch->net_rms == nullptr || ch->net_rms->failed()) continue;  // dead channel
    if (!rms::compatible(ch->net_params, plan.net_request.acceptable)) continue;
    if (plan.actual.capacity > ch->net_params.capacity) continue;
    ch->cached = false;
    sim_.cancel(ch->cache_timer);  // the expiry timer leaves the pending set
    ch->ref_count = 1;
    ch->capacity_used = plan.actual.capacity;
    ++stats_.cache_hits;
    trace("st.channel", "cache hit: reusing channel " + std::to_string(ch->id));
    return ch.get();
  }

  auto created = fabric.create(host_, plan.net_request, Label{peer, kDataPort});
  if (!created) return created.error();

  auto ch = std::make_unique<Channel>();
  ch->id = next_channel_id_++;
  ch->peer = peer;
  ch->net_params = created.value()->params();
  ch->net_rms = std::move(created).value();
  ch->headroom = ch->net_rms->send_headroom();
  ch->fabric = &fabric;
  ch->ref_count = 1;
  ch->capacity_used = plan.actual.capacity;
  const std::uint64_t cid = ch->id;
  ch->net_rms->on_failure([this, cid](const Error& e) { fail_channel_streams(cid, e); });
  // Gateway source quench arrives per network RMS; every ST stream
  // multiplexed on the channel shares the congested path, so all get the
  // advice.
  ch->net_rms->on_congestion([this, cid] { congestion_channel_streams(cid); });
  Channel* raw = ch.get();
  channels_[cid] = std::move(ch);
  ++stats_.net_rms_created;
  trace("st.channel", "created network RMS channel " + std::to_string(cid) +
                          " to host " + std::to_string(peer));
  return raw;
}

// ---------------------------------------------------------- control channel

SubtransportLayer::PeerState& SubtransportLayer::peer_state(HostId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second;
  PeerState ps;
  ps.peer = peer;
  ps.fabric = fabric_for(peer);
  return peers_.emplace(peer, std::move(ps)).first->second;
}

void SubtransportLayer::ensure_control_out(PeerState& ps) {
  if (observer_ != nullptr) {
    // Path manager steering: control traffic migrates off a network whose
    // probes stopped answering, so replies/acks keep flowing during and
    // after a failover even when the original network is silently dead.
    netrms::NetRmsFabric* preferred =
        observer_->preferred_control_fabric(ps.peer, ps.fabric);
    if (preferred != nullptr && preferred != ps.fabric) {
      ps.fabric = preferred;
      if (ps.control_out != nullptr) {
        ps.control_out.reset();
        ++stats_.control_channels_reset;
        trace("st.control", "control channel to host " + std::to_string(ps.peer) +
                                " migrated to " + preferred->traits().name);
      }
    }
  }
  if (ps.control_out == nullptr &&
      (ps.fabric == nullptr || ps.fabric->network().down())) {
    // The control channel's network died and no path manager is steering:
    // fall back to any attached network that is still up, or control
    // traffic (including the create handshake for replacement streams)
    // would be dropped forever.
    for (netrms::NetRmsFabric* candidate : fabrics_) {
      if (candidate == ps.fabric || candidate->network().down()) continue;
      if (!candidate->network().attached(ps.peer)) continue;
      ps.fabric = candidate;
      trace("st.control", "control channel to host " + std::to_string(ps.peer) +
                              " re-homed to " + candidate->traits().name);
      break;
    }
  }
  if (ps.control_out != nullptr || ps.fabric == nullptr) return;
  auto created =
      ps.fabric->create(host_, control_channel_request(), Label{ps.peer, kControlPort});
  if (!created) return;  // peer unreachable; requests will retry and give up
  ps.control_out = std::move(created).value();
}

void SubtransportLayer::send_control(PeerState& ps, Bytes payload) {
  if (ps.control_out != nullptr && ps.control_out->failed()) {
    // The network RMS under the control channel died (network failure or
    // partition). Drop it and re-create below: control traffic must not
    // keep feeding a dead stream, or the peer stays unreachable forever.
    ps.control_out.reset();
    ++stats_.control_channels_reset;
    trace("st.control", "control channel to host " + std::to_string(ps.peer) +
                            " failed; re-establishing");
  }
  ensure_control_out(ps);
  if (ps.control_out == nullptr) return;
  rms::Message m;
  m.data = std::move(payload);
  m.target = Label{ps.peer, kControlPort};
  m.source = Label{host_, kControlPort};
  ++stats_.control_messages;
  (void)ps.control_out->send(std::move(m));
}

netrms::NetRmsFabric* SubtransportLayer::fabric_named(BytesView name) const {
  if (name.empty()) return nullptr;
  const std::string wanted = to_string(name);
  for (netrms::NetRmsFabric* f : fabrics_) {
    if (f->traits().name == wanted) return f;
  }
  return nullptr;
}

void SubtransportLayer::send_control_on(PeerState& ps, netrms::NetRmsFabric& fabric,
                                        Bytes payload) {
  // The main control channel already lives on the wanted fabric: use it.
  if (ps.fabric == &fabric && ps.control_out != nullptr &&
      !ps.control_out->failed()) {
    send_control(ps, std::move(payload));
    return;
  }
  auto& ch = ps.ack_out[&fabric];
  if (ch != nullptr && ch->failed()) {
    ch.reset();
    ++stats_.control_channels_reset;
  }
  if (ch == nullptr) {
    auto created =
        fabric.create(host_, control_channel_request(), Label{ps.peer, kControlPort});
    // Unreachable fabric: drop the ack. That is the point — the ack shares
    // the data path's fate, so the sender sees this path as unhealthy
    // rather than blaming a healthy one.
    if (!created) return;
    ch = std::move(created).value();
  }
  rms::Message m;
  m.data = std::move(payload);
  m.target = Label{ps.peer, kControlPort};
  m.source = Label{host_, kControlPort};
  ++stats_.control_messages;
  (void)ch->send(std::move(m));
}

void SubtransportLayer::send_request_with_retry(HostId peer, Bytes payload,
                                                std::uint64_t req_id, int attempts) {
  auto pit = peers_.find(peer);
  if (pit == peers_.end()) return;
  PeerState& ps = pit->second;
  auto pending = ps.pending_replies.find(req_id);
  if (pending == ps.pending_replies.end()) return;  // already answered
  if (attempts == 0) {
    auto cb = std::move(pending->second.cb);
    ps.pending_replies.erase(pending);
    cb(false);  // gave up
    return;
  }
  if (attempts < config_.control_retries) ++stats_.control_retries;
  // Arm before sending (simulated time cannot advance in between): the
  // iterator must not be used after send_control touches peer state.
  pending->second.retry_timer = sim_.timer_after(
      config_.control_retry_timeout,
      [this, peer, payload, req_id, attempts]() mutable {
        send_request_with_retry(peer, std::move(payload), req_id, attempts - 1);
      });
  send_control(ps, std::move(payload));
}

void SubtransportLayer::ensure_authenticated(PeerState& ps, std::function<void()> then) {
  if (ps.authenticated) {
    then();
    return;
  }
  ps.waiting.push_back(std::move(then));
  if (ps.auth_pending) return;

  ensure_control_out(ps);
  if (ps.fabric != nullptr && ps.fabric->traits().trusted) {
    // Trusted network: the handshake is elided (§2.5 case 3).
    ps.authenticated = true;
    ps.peer_verified = true;
    ++stats_.auth_elided;
    trace("st.auth", "elided: network is trusted (peer " + std::to_string(ps.peer) + ")");
    auto waiting = std::move(ps.waiting);
    ps.waiting.clear();
    for (auto& cb : waiting) cb();
    return;
  }

  ps.auth_pending = true;
  ++stats_.auth_handshakes;
  trace("st.auth", "challenge -> host " + std::to_string(ps.peer));
  const std::uint64_t req_id = ps.next_request++;
  // Deterministic per-pair nonce; uniqueness per request id is what matters.
  ps.auth_nonce = (host_ << 32) ^ (ps.peer << 16) ^ req_id ^ 0xA5A5A5A5ull;

  const Key key = derive_pair_key(host_, ps.peer);
  Bytes payload;
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(ControlType::kAuthChallenge));
  w.u64(req_id);
  w.u64(ps.auth_nonce);
  w.u64(xtea_mac(key, ps.auth_nonce, BytesView{}));  // proves we hold the pair key

  const HostId peer = ps.peer;
  ps.pending_replies[req_id].cb = [this, peer](bool ok) {
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    PeerState& state = it->second;
    state.auth_pending = false;
    state.authenticated = ok;
    // Drain the parked work either way: on failure each establishment
    // proceeds unauthenticated, is rejected (or times out) by the peer,
    // and fails its stream — rather than hanging forever.
    auto waiting = std::move(state.waiting);
    state.waiting.clear();
    for (auto& cb : waiting) cb();
  };

  // Send with retransmission: the control channel may drop messages.
  send_request_with_retry(ps.peer, std::move(payload), req_id, config_.control_retries);
}

void SubtransportLayer::establish(StRms& rms) {
  PeerState& ps = peer_state(rms.peer_);
  const std::uint64_t id = rms.id_;
  ensure_authenticated(ps, [this, id] {
    auto sit = streams_.find(id);
    if (sit == streams_.end()) return;
    StRms& stream = *sit->second;
    PeerState& state = peer_state(stream.peer_);

    const std::uint64_t req_id = state.next_request++;
    Bytes payload;
    Writer w(payload);
    w.u8(static_cast<std::uint8_t>(ControlType::kCreateRequest));
    w.u64(req_id);
    w.u64(stream.id_);
    w.u64(stream.target_.port);
    w.u8(stream.security_);
    // Name the fabric the data channel lives on, so the receiver returns
    // fast acks over the same network (shared fate with the data path).
    netrms::NetRmsFabric* data_fabric = stream_fabric(stream.id_);
    w.sized_bytes(to_bytes(data_fabric != nullptr ? data_fabric->traits().name
                                                  : std::string{}));

    state.pending_replies[req_id].cb = [this, id](bool ok) {
      auto it = streams_.find(id);
      if (it == streams_.end()) return;
      StRms& s = *it->second;
      if (!ok) {
        s.fail(make_error(Errc::kRmsFailed, "peer rejected ST RMS establishment"));
        return;
      }
      s.established_ = true;
      trace("st.establish", "stream " + std::to_string(s.id_) + " confirmed by peer");
      if (s.rebinding_) {
        s.rebinding_ = false;
        // Replay unacknowledged messages under their original sequence
        // numbers before anything newer: the receiver's preserved
        // next_expected_seq drops whatever it already delivered.
        replay_handoff(s);
        if (observer_ != nullptr) observer_->on_stream_rebound(s, s.rebind_downgraded_);
      }
      auto pending = std::move(s.pending_);
      s.pending_.clear();
      for (auto& p : pending) emit(s, std::move(p.msg), p.ack_id, p.acked);
    };

    send_request_with_retry(state.peer, std::move(payload), req_id, config_.control_retries);
  });
}

// ---------------------------------------------------------------- failover

StRms* SubtransportLayer::find_stream(std::uint64_t stream_id) {
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? nullptr : it->second;
}

netrms::NetRmsFabric* SubtransportLayer::stream_fabric(std::uint64_t stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return nullptr;
  auto cit = channels_.find(it->second->channel_id_);
  return cit == channels_.end() ? nullptr : cit->second->fabric;
}

Status SubtransportLayer::rebind_stream(std::uint64_t stream_id,
                                        netrms::NetRmsFabric& fabric) {
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end()) {
    return make_error(Errc::kClosed, "rebind of unknown stream");
  }
  StRms& rms = *sit->second;

  // A slow-path rebind supersedes any staged channel (it may even target
  // the same fabric; obtaining the channel below must not double-count the
  // staged capacity share).
  abort_rebind(stream_id);

  // §2.4 re-run against the *original* request: the client's acceptable
  // set, not the old actual parameters, bounds what the new network must
  // provide.
  auto plan = plan_params(fabric, rms.request_);
  if (!plan) {
    ++stats_.rebind_failures;
    return plan.error();
  }
  auto channel = obtain_channel(rms.peer_, fabric, plan.value());
  if (!channel) {
    ++stats_.rebind_failures;
    return channel.error();
  }

  // Leave the old channel without a kDelete: the stream lives on, and the
  // re-establishment below refreshes the receiver's demux entry in place
  // (preserving its next_expected_seq for replay dedup).
  detach_channel(rms);

  const rms::Params old_params = rms.params();
  rms.channel_id_ = channel.value()->id;
  rms.security_ = plan.value().security;
  rms.reset_params(plan.value().actual);
  const bool downgraded = !rms::compatible(rms.params(), old_params);
  rms.rebind_downgraded_ = downgraded;
  if (downgraded) {
    ++stats_.rebind_downgrades;
    if (rms.downgrade_cb_) rms.downgrade_cb_(old_params, rms.params());
  }
  rms.established_ = false;
  rms.rebinding_ = true;

  // Move the peer's control channel onto the new network too: the old one
  // may be silently dead, and re-establishment needs a working
  // request/reply path.
  PeerState& ps = peer_state(rms.peer_);
  if (ps.fabric != &fabric) {
    ps.fabric = &fabric;
    if (ps.control_out != nullptr) {
      ps.control_out.reset();
      ++stats_.control_channels_reset;
    }
  }

  ++stats_.streams_rebound;
  trace("st.rebind", "stream " + std::to_string(stream_id) + " -> " +
                         fabric.traits().name +
                         (downgraded ? " (downgraded)" : ""));
  establish(rms);
  return Status::ok_status();
}

// ------------------------------------------------- make-before-break rebind

Status SubtransportLayer::prepare_rebind(std::uint64_t stream_id,
                                         netrms::NetRmsFabric& fabric) {
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end()) {
    return make_error(Errc::kClosed, "prepare for unknown stream");
  }
  StRms& rms = *sit->second;

  auto existing = staged_.find(stream_id);
  if (existing != staged_.end()) {
    if (existing->second.fabric == &fabric) return Status::ok_status();
    abort_rebind(stream_id);  // retargeting: drop the old staged channel
  }

  auto plan = plan_params(fabric, rms.request_);
  if (!plan) {
    ++stats_.prepare_failures;
    return plan.error();
  }
  auto channel = obtain_channel(rms.peer_, fabric, plan.value());
  if (!channel) {
    ++stats_.prepare_failures;
    return channel.error();
  }

  StagedRebind sr;
  sr.channel_id = channel.value()->id;
  sr.fabric = &fabric;
  sr.plan = std::move(plan).value();
  staged_[stream_id] = std::move(sr);
  ++stats_.rebinds_prepared;
  trace("st.prepare", "stream " + std::to_string(stream_id) + " staging on " +
                          fabric.traits().name);

  // Confirm the staged channel with the peer in the background; data keeps
  // flowing on the current channel the whole time. kPrepareRequest
  // refreshes the receiver's demux entry in place (preserving
  // next_expected_seq) without disturbing a reassembly that old-channel
  // fragments may still complete.
  PeerState& ps = peer_state(rms.peer_);
  const std::uint64_t id = stream_id;
  ensure_authenticated(ps, [this, id] {
    auto staged_it = staged_.find(id);
    auto stream_it = streams_.find(id);
    if (staged_it == staged_.end() || stream_it == streams_.end()) return;
    StRms& stream = *stream_it->second;
    PeerState& state = peer_state(stream.peer_);

    const std::uint64_t req_id = state.next_request++;
    staged_it->second.req_id = req_id;
    Bytes payload;
    Writer w(payload);
    w.u8(static_cast<std::uint8_t>(ControlType::kPrepareRequest));
    w.u64(req_id);
    w.u64(stream.id_);
    w.u64(stream.target_.port);
    w.u8(staged_it->second.plan.security);
    w.sized_bytes(to_bytes(staged_it->second.fabric->traits().name));

    state.pending_replies[req_id].cb = [this, id, req_id](bool ok) {
      auto it = staged_.find(id);
      if (it == staged_.end()) return;  // aborted while in flight
      if (it->second.req_id != req_id) return;  // superseded: reply is stale
      if (!ok) {
        ++stats_.prepare_failures;
        abort_rebind(id);
        return;
      }
      it->second.ready = true;
      trace("st.prepare", "stream " + std::to_string(id) + " staged channel ready");
      auto stream_entry = streams_.find(id);
      if (stream_entry != streams_.end() && observer_ != nullptr) {
        observer_->on_rebind_prepared(*stream_entry->second);
      }
    };

    send_request_with_retry(state.peer, std::move(payload), req_id,
                            config_.control_retries);
  });
  return Status::ok_status();
}

bool SubtransportLayer::rebind_prepared(std::uint64_t stream_id) const {
  auto it = staged_.find(stream_id);
  return it != staged_.end() && it->second.ready;
}

netrms::NetRmsFabric* SubtransportLayer::staged_fabric(std::uint64_t stream_id) const {
  auto it = staged_.find(stream_id);
  return it == staged_.end() ? nullptr : it->second.fabric;
}

Status SubtransportLayer::commit_rebind(std::uint64_t stream_id) {
  auto sit = streams_.find(stream_id);
  auto staged_it = staged_.find(stream_id);
  if (sit == streams_.end() || staged_it == staged_.end()) {
    return make_error(Errc::kClosed, "commit with nothing staged");
  }
  if (!staged_it->second.ready) {
    return make_error(Errc::kRmsFailed, "staged channel not yet confirmed");
  }
  StRms& rms = *sit->second;
  StagedRebind sr = std::move(staged_it->second);
  staged_.erase(staged_it);

  auto cit = channels_.find(sr.channel_id);
  if (cit == channels_.end() || cit->second->net_rms == nullptr ||
      cit->second->net_rms->failed()) {
    // The staged channel died between ready and commit. Return the staged
    // capacity share and ref count before falling back to the slow path —
    // the channel entry may still exist (a network RMS can fail without
    // fail_channel_streams having pruned the staging).
    drop_staged_channel(sr, stream_id);
    return make_error(Errc::kRmsFailed, "staged channel died before commit");
  }

  // The switch itself: leave the old channel (no kDelete — the stream
  // lives on) and adopt the staged one. The peer confirmed it during
  // prepare, so establishment state is untouched and the handoff buffer
  // replays immediately — no negotiation RTT.
  detach_channel(rms);

  const rms::Params old_params = rms.params();
  rms.channel_id_ = sr.channel_id;
  rms.security_ = sr.plan.security;
  rms.reset_params(sr.plan.actual);
  const bool downgraded = !rms::compatible(rms.params(), old_params);
  rms.rebind_downgraded_ = downgraded;
  if (downgraded) {
    ++stats_.rebind_downgrades;
    if (rms.downgrade_cb_) rms.downgrade_cb_(old_params, rms.params());
  }

  // Control traffic follows the stream: the old network may be silently
  // dead, and acks/replies must keep flowing.
  PeerState& ps = peer_state(rms.peer_);
  if (ps.fabric != sr.fabric) {
    ps.fabric = sr.fabric;
    if (ps.control_out != nullptr) {
      ps.control_out.reset();
      ++stats_.control_channels_reset;
    }
  }

  ++stats_.rebinds_committed;
  ++stats_.streams_rebound;
  trace("st.rebind", "stream " + std::to_string(stream_id) + " -> " +
                         sr.fabric->traits().name + " (hitless)" +
                         (downgraded ? " (downgraded)" : ""));
  if (rms.established_) {
    replay_handoff(rms);
    auto pending = std::move(rms.pending_);
    rms.pending_.clear();
    for (auto& p : pending) emit(rms, std::move(p.msg), p.ack_id, p.acked);
    if (observer_ != nullptr) observer_->on_stream_rebound(rms, downgraded);
  } else {
    // Commit raced the very first establishment; finish it on the new home.
    establish(rms);
  }
  return Status::ok_status();
}

void SubtransportLayer::abort_rebind(std::uint64_t stream_id) {
  auto it = staged_.find(stream_id);
  if (it == staged_.end()) return;
  StagedRebind sr = std::move(it->second);
  staged_.erase(it);
  ++stats_.rebinds_aborted;
  trace("st.prepare", "stream " + std::to_string(stream_id) + " staged rebind aborted");
  drop_staged_channel(sr, stream_id);
}

void SubtransportLayer::drop_staged_channel(const StagedRebind& sr,
                                            std::uint64_t stream_id) {
  (void)stream_id;
  auto cit = channels_.find(sr.channel_id);
  if (cit == channels_.end()) return;
  Channel& ch = *cit->second;
  // Mirror detach_channel for a stream that never carried data on the
  // channel: return the staged capacity share and cache or release when the
  // last user leaves.
  ch.capacity_used -= std::min(ch.capacity_used, sr.plan.actual.capacity);
  if (--ch.ref_count > 0) return;
  if (config_.enable_caching && ch.net_rms != nullptr && !ch.net_rms->failed()) {
    ch.cached = true;
    const std::uint64_t id = ch.id;
    sim_.cancel(ch.cache_timer);
    ch.cache_timer = sim_.timer_after(config_.cache_idle_timeout,
                                      [this, id] { expire_channel(id); });
  } else {
    release_channel(ch);
  }
}

// --------------------------------------------------------------- send path

Status SubtransportLayer::submit(StRms& rms, rms::Message msg, std::uint64_t ack_id,
                                 bool acked) {
  ++stats_.messages_sent;
  if (msg.sent_at < 0) msg.sent_at = sim_.now();
  msg.source = Label{host_, rms.id_};
  msg.target = rms.target_;
  if (acked && (fast_ack_rtt_hist_ != nullptr || observer_ != nullptr)) {
    rms.ack_sent_at_.emplace(ack_id, sim_.now());
    rms.ack_order_.push_back(ack_id);
    // Every map key is also in ack_order_, so bounding the deque bounds
    // both containers even when the peer never acknowledges.
    while (rms.ack_order_.size() > StRms::kMaxTrackedAcks) {
      rms.ack_sent_at_.erase(rms.ack_order_.front());
      rms.ack_order_.pop_front();
    }
  }
  if (!rms.established_) {
    rms.pending_.push_back(StRms::PendingSend{std::move(msg), ack_id, acked});
    return Status::ok_status();
  }
  emit(rms, std::move(msg), ack_id, acked);
  return Status::ok_status();
}

void SubtransportLayer::emit(StRms& rms, rms::Message msg, std::uint64_t ack_id,
                             bool acked) {
  const std::uint64_t seq = rms.next_seq_++;
  if (observer_ != nullptr && rms.params().quality.reliable) {
    // Failover handoff: retain the message until its fast ack arrives. A
    // message the client did not ask to acknowledge gets an internal ack
    // id (kHandoffAckBit | seq) so the buffer still drains in steady state.
    if (!acked) {
      ack_id = kHandoffAckBit | seq;
      acked = true;
      // Internal handoff acks double as data-RTT probes for the path
      // manager; client-requested acks were already tracked in submit.
      rms.ack_sent_at_.emplace(ack_id, sim_.now());
      rms.ack_order_.push_back(ack_id);
      while (rms.ack_order_.size() > StRms::kMaxTrackedAcks) {
        rms.ack_sent_at_.erase(rms.ack_order_.front());
        rms.ack_order_.pop_front();
      }
    }
    StRms::HandoffEntry entry{seq, ack_id, msg};  // copy shares the refcounted buffer
    rms.handoff_bytes_ += entry.msg.size();
    rms.handoff_.push_back(std::move(entry));
    while (rms.handoff_.size() > config_.handoff_max_messages ||
           rms.handoff_bytes_ > config_.handoff_max_bytes) {
      rms.handoff_bytes_ -= rms.handoff_.front().msg.size();
      rms.handoff_.pop_front();
      ++stats_.handoff_dropped;
    }
  }
  emit_component(rms, std::move(msg), ack_id, acked, seq);
}

void SubtransportLayer::trim_handoff(StRms& rms, std::uint64_t ack_id) {
  // Find the acknowledged entry; in-sequence delivery means everything at
  // or below its sequence number arrived too, so the trim is cumulative.
  std::uint64_t upto_seq = 0;
  bool found = false;
  for (const StRms::HandoffEntry& e : rms.handoff_) {
    if (e.ack_id == ack_id) {
      upto_seq = e.seq;
      found = true;
      break;
    }
  }
  if (!found) return;
  while (!rms.handoff_.empty() && rms.handoff_.front().seq <= upto_seq) {
    rms.handoff_bytes_ -= rms.handoff_.front().msg.size();
    rms.handoff_.pop_front();
  }
}

void SubtransportLayer::replay_handoff(StRms& rms) {
  // Drop send-time tracking from the old path: acks for replayed messages
  // would otherwise attribute the failover gap to the new path's RTT.
  rms.ack_sent_at_.clear();
  rms.ack_order_.clear();
  if (rms.handoff_.empty()) return;
  trace("st.replay", "stream " + std::to_string(rms.id_) + ": " +
                         std::to_string(rms.handoff_.size()) +
                         " unacknowledged message(s)");
  // Entries stay buffered until their re-requested fast acks arrive, so a
  // second failover mid-replay replays again from the same buffer.
  for (const StRms::HandoffEntry& e : rms.handoff_) {
    ++stats_.handoff_replayed;
    emit_component(rms, e.msg, e.ack_id, true, e.seq);
  }
}

void SubtransportLayer::emit_component(StRms& rms, rms::Message msg,
                                       std::uint64_t ack_id, bool acked,
                                       std::uint64_t seq) {
  auto cit = channels_.find(rms.channel_id_);
  if (cit == channels_.end()) return;  // channel failed and was torn down
  Channel& ch = *cit->second;

  const bool encrypts = rms.encrypts();
  const bool macs = rms.macs();
  const netrms::CostModel& cost = ch.fabric->cost();
  const Time cpu_cost = cost.message_cost(msg.size(), false, encrypts, macs);

  // §4.3.1: the preferable (maximum) transmission deadline is
  //   now + (ST RMS delay bound) - (network RMS delay bound),
  // and the *minimum* transmission deadline is the deadline of the
  // previous message on the same ST RMS — that clamp keeps deadlines
  // monotone per stream, so neither the EDF CPU stage nor the deadline
  // interface queues can reorder a stream's messages.
  const Time st_bound = rms.params().delay.bound_for(msg.size());
  const Time net_bound = ch.net_params.delay.bound_for(msg.size());
  Time eff = kTimeNever;
  if (st_bound != kTimeNever && net_bound != kTimeNever) {
    eff = std::max(sim_.now() + st_bound - net_bound, rms.last_passed_deadline_);
    rms.last_passed_deadline_ = eff;
  }

  const std::uint64_t stream_id = rms.id_;
  const std::uint64_t channel_id = rms.channel_id_;

  // For hosts running a static-priority short-term scheduler (the paper's
  // baseline), derive a coarse class from the delay bound — one class per
  // 10 ms, exactly the granularity loss §5 attributes to priorities.
  const Time bound_a = rms.params().delay.a;
  const int cpu_priority = static_cast<int>(
      bound_a == kTimeNever ? 100 : std::min<Time>(bound_a / msec(10), 100));

  cpu_.submit(eff, cpu_cost, [this, stream_id, channel_id, seq, eff, ack_id, acked,
                              msg = std::move(msg)]() mutable {
    auto sit = streams_.find(stream_id);
    auto chit = channels_.find(channel_id);
    if (chit == channels_.end()) return;
    Channel& channel = *chit->second;
    const std::uint8_t base_security =
        sit != streams_.end() ? sit->second->security_ : 0;
    const Key key = derive_pair_key(host_, channel.peer);

    const std::size_t nonfrag_limit =
        channel.net_params.max_message_size -
        std::min<std::size_t>(channel.net_params.max_message_size,
                              kEnvelopeBytes +
                                  component_bytes(0, base_security |
                                                         (acked ? kAckRequest : 0)));

    ComponentSpec c;
    c.stream_id = stream_id;
    c.seq = seq;
    c.sent_at = msg.sent_at;
    c.ack_id = ack_id;
    c.key = &key;

    if (msg.size() > nonfrag_limit) {
      // Fragmentation (§4.3): not piggybacked, never retransmitted. The
      // whole burst is serialized into one arena; each fragment packet is
      // a slice of it, with headroom for the network RMS header.
      const std::uint8_t flags = static_cast<std::uint8_t>(
          base_security | kFragment | (acked ? kAckRequest : 0));
      const std::size_t frag_payload =
          channel.net_params.max_message_size - kEnvelopeBytes -
          component_bytes(0, flags);
      const auto count = static_cast<std::uint16_t>(
          (msg.size() + frag_payload - 1) / frag_payload);
      trace("st.frag", "stream " + std::to_string(stream_id) + " seq " +
                           std::to_string(seq) + ": " + std::to_string(msg.size()) +
                           " B -> " + std::to_string(count) + " fragments");
      // Anything of this stream already queued must leave first.
      flush_channel(channel);

      const BytesView whole = msg.data.view();
      const std::size_t region_cap =
          channel.headroom + kEnvelopeBytes + component_bytes(frag_payload, flags);
      BufferWriter arena(static_cast<std::size_t>(count) * region_cap);
      std::vector<std::pair<std::size_t, std::size_t>> regions;
      regions.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        const std::size_t offset = static_cast<std::size_t>(i) * frag_payload;
        const std::size_t len = std::min(frag_payload, msg.size() - offset);
        // Only the first fragment carries the ack request.
        c.flags = i == 0 ? flags : static_cast<std::uint8_t>(flags & ~kAckRequest);
        c.frag_index = i;
        c.frag_count = count;
        c.payload = whole.subspan(offset, len);
        const std::size_t start = arena.pos();
        arena.skip(channel.headroom);
        arena.u8(kStDataTag);
        arena.u8(1);
        serialize_component(arena, c);
        regions.emplace_back(start, arena.pos() - start);
        ++stats_.components_sent;
        ++stats_.fragments_sent;
      }
      const Buffer burst = arena.finish();
      const Time passed = clamp_packet_deadline(eff, {stream_id});
      for (const auto& [start, len] : regions) {
        rms::Message m;
        m.data = burst.slice(start + channel.headroom, len - channel.headroom,
                             channel.headroom);
        m.target = Label{channel.peer, kDataPort};
        ++stats_.network_messages;
        (void)channel.net_rms->send(std::move(m), passed);
      }
      return;
    }

    c.flags = static_cast<std::uint8_t>(base_security | (acked ? kAckRequest : 0));
    c.payload = msg.data.view();
    enqueue_component(channel, c, eff, config_.enable_piggybacking);
  }, cpu_priority);
}

Time SubtransportLayer::clamp_packet_deadline(
    Time candidate, const std::vector<std::uint64_t>& stream_ids) {
  if (candidate == kTimeNever) return kTimeNever;
  Time passed = candidate;
  for (std::uint64_t id : stream_ids) {
    auto it = streams_.find(id);
    if (it != streams_.end()) {
      passed = std::max(passed, it->second->last_passed_deadline_);
    }
  }
  for (std::uint64_t id : stream_ids) {
    auto it = streams_.find(id);
    if (it != streams_.end()) it->second->last_passed_deadline_ = passed;
  }
  return passed;
}

void SubtransportLayer::serialize_component(BufferWriter& w, const ComponentSpec& c) {
  w.u64(c.stream_id);
  w.u64(c.seq);
  w.i64(c.sent_at);
  w.u8(c.flags);
  if (c.flags & kFragment) {
    w.u16(c.frag_index);
    w.u16(c.frag_count);
  }
  if (c.flags & kAckRequest) w.u64(c.ack_id);
  std::size_t mac_at = 0;
  if (c.flags & kMac) {
    mac_at = w.pos();
    w.u64(0);  // patched below: the MAC precedes the body on the wire
  }
  w.u32(static_cast<std::uint32_t>(c.payload.size()));
  const std::size_t body_at = w.pos();
  w.bytes(c.payload);  // the send path's single payload copy (gather-write)
  const std::uint64_t nonce = component_nonce(c.stream_id, c.seq, c.frag_index);
  if (c.flags & kEncrypted) {
    xtea_ctr_crypt(*c.key, nonce, w.span(body_at, c.payload.size()));
    stats_.bytes_encrypted += c.payload.size();
  }
  if (c.flags & kMac) {
    const auto body = w.span(body_at, c.payload.size());
    w.patch_u64(mac_at, xtea_mac(*c.key, nonce, BytesView(body.data(), body.size())));
    stats_.bytes_macced += c.payload.size();
  }
}

void SubtransportLayer::enqueue_component(Channel& ch, const ComponentSpec& c,
                                          Time eff_deadline, bool piggybackable) {
  ++stats_.components_sent;
  const std::size_t space_limit =
      ch.net_params.max_message_size > kEnvelopeBytes
          ? ch.net_params.max_message_size - kEnvelopeBytes
          : 0;
  const std::size_t wire_size = component_bytes(c.payload.size(), c.flags);

  if (!piggybackable) {
    // Anything of this stream already queued must leave first.
    flush_channel(ch);
    BufferWriter w(ch.headroom + kEnvelopeBytes + wire_size);
    w.skip(ch.headroom);
    w.u8(kStDataTag);
    w.u8(1);
    serialize_component(w, c);
    const Buffer arena = w.finish();
    const Time passed = clamp_packet_deadline(eff_deadline, {c.stream_id});
    rms::Message m;
    m.data = arena.slice(ch.headroom, arena.size() - ch.headroom, ch.headroom);
    m.target = Label{ch.peer, kDataPort};
    ++stats_.network_messages;
    (void)ch.net_rms->send(std::move(m), passed);
    return;
  }

  const std::size_t queued =
      ch.queue_count == 0 ? 0 : ch.queue.pos() - ch.headroom - kEnvelopeBytes;
  if (queued + wire_size > space_limit) flush_channel(ch);

  // Piggybacking pays only when other traffic coexists within the window.
  // If the channel has been idle longer than a window, nothing will join
  // this message — send it at once rather than taxing it the full wait.
  const bool channel_idle =
      ch.queue_count == 0 && (ch.last_enqueue == kTimeNever ||
                              sim_.now() - ch.last_enqueue > config_.piggyback_window);
  ch.last_enqueue = sim_.now();

  if (ch.queue_count == 0) {
    // Start a fresh arena: headroom gap, then the envelope whose count
    // field is patched at flush.
    ch.queue = BufferWriter(ch.headroom + kEnvelopeBytes + space_limit);
    ch.queue.skip(ch.headroom);
    ch.queue.u8(kStDataTag);
    ch.queue.u8(0);
  }
  serialize_component(ch.queue, c);
  ++ch.queue_count;
  ch.queue_streams.push_back(c.stream_id);
  ch.queue_min_deadline = std::min(ch.queue_min_deadline, eff_deadline);
  // Flush by the earliest transmission deadline, but never hold a message
  // longer than the piggyback window — waiting out a loose bound would
  // trade the whole delay budget for a chance to piggyback.
  ch.queue_flush_at = std::min({ch.queue_flush_at, eff_deadline,
                                sim_.now() + config_.piggyback_window});

  if (channel_idle || ch.queue_flush_at <= sim_.now()) {
    flush_channel(ch);
    return;
  }
  // (Re)arm the flush timer.
  sim_.cancel(ch.flush_timer);
  const std::uint64_t id = ch.id;
  ch.flush_timer = sim_.timer_at(ch.queue_flush_at, [this, id] {
    auto it = channels_.find(id);
    if (it == channels_.end()) return;
    flush_channel(*it->second);
  });
}

void SubtransportLayer::flush_channel(Channel& ch) {
  sim_.cancel(ch.flush_timer);  // disarm: the queue goes out now
  if (ch.queue_count == 0) return;

  ch.queue.patch_u8(ch.headroom + 1, ch.queue_count);  // envelope count
  const Buffer arena = ch.queue.finish();
  Buffer payload = arena.slice(ch.headroom, arena.size() - ch.headroom, ch.headroom);

  // The packet carries the queue's *minimum* transmission deadline — the
  // most urgent component sets the urgency — clamped so it is monotone for
  // every ST RMS it carries (§4.3.1's ordering rules). Independent streams
  // on the same network RMS keep independent urgency.
  const Time passed = clamp_packet_deadline(ch.queue_min_deadline, ch.queue_streams);
  stats_.piggybacked += ch.queue_count - 1;
  ++stats_.network_messages;
  trace("st.flush", "channel " + std::to_string(ch.id) + ": " +
                        std::to_string(ch.queue_count) + " component(s), " +
                        std::to_string(payload.size()) + " B, deadline " +
                        format_time(passed));

  ch.queue_count = 0;
  ch.queue_streams.clear();
  ch.queue_min_deadline = kTimeNever;
  ch.queue_flush_at = kTimeNever;

  rms::Message m;
  m.data = std::move(payload);
  m.target = Label{ch.peer, kDataPort};
  (void)ch.net_rms->send(std::move(m), passed);
}

// ------------------------------------------------------------- receive path

void SubtransportLayer::on_control_message(rms::Message msg) {
  const netrms::CostModel cost;  // control messages are small; default costs
  cpu_.submit(sim_.now() + config_.cpu_stage_allowance,
              cost.message_cost(msg.size(), false, false, false),
              [this, msg = std::move(msg)]() mutable { handle_control(std::move(msg)); });
}

void SubtransportLayer::handle_control(rms::Message msg) {
  const HostId src = msg.source.host;
  Reader r(msg.data);
  auto type = r.u8();
  if (!type) return;

  PeerState& ps = peer_state(src);

  switch (static_cast<ControlType>(*type)) {
    case ControlType::kAuthChallenge: {
      auto req_id = r.u64();
      auto nonce = r.u64();
      auto mac = r.u64();
      if (!req_id || !nonce || !mac) return;
      const Key key = derive_pair_key(host_, src);
      if (xtea_mac(key, *nonce, BytesView{}) != *mac) return;  // impostor challenge
      ps.peer_verified = true;
      Bytes reply;
      Writer w(reply);
      w.u8(static_cast<std::uint8_t>(ControlType::kAuthResponse));
      w.u64(*req_id);
      w.u64(*nonce);
      w.u64(xtea_mac(key, *nonce + 1, BytesView{}));
      send_control(ps, std::move(reply));
      break;
    }
    case ControlType::kAuthResponse: {
      auto req_id = r.u64();
      auto nonce = r.u64();
      auto mac = r.u64();
      if (!req_id || !nonce || !mac) return;
      const Key key = derive_pair_key(host_, src);
      if (*nonce != ps.auth_nonce || xtea_mac(key, *nonce + 1, BytesView{}) != *mac) {
        ++stats_.auth_drops;
        return;
      }
      ps.peer_verified = true;
      auto it = ps.pending_replies.find(*req_id);
      if (it != ps.pending_replies.end()) {
        sim_.cancel(it->second.retry_timer);
        auto cb = std::move(it->second.cb);
        ps.pending_replies.erase(it);
        cb(true);
      }
      break;
    }
    case ControlType::kCreateRequest: {
      auto req_id = r.u64();
      auto st_id = r.u64();
      auto port = r.u64();
      auto security = r.u8();
      if (!req_id || !st_id || !port || !security) return;
      const bool trusted = ps.fabric != nullptr && ps.fabric->traits().trusted;
      const bool ok = ps.peer_verified || trusted;
      if (ok) {
        // Re-establishment after a path failover arrives as a second
        // kCreateRequest for the same (src, st_id). Preserve the entry's
        // next_expected_seq so replayed messages this side already
        // delivered are dropped as stale — the no-duplication half of the
        // failover guarantee. A reassembly from the old network can never
        // complete, so discard it.
        auto [eit, inserted] = demux_.try_emplace({src, *st_id});
        DemuxEntry& entry = eit->second;
        if (!inserted) discard_partial(entry);
        entry.src = src;
        entry.st_id = *st_id;
        entry.target = Label{host_, *port};
        entry.security = *security;
        if (auto net_name = r.sized_bytes()) {
          entry.ack_fabric = fabric_named(*net_name);
        }
      }
      Bytes reply;
      Writer w(reply);
      w.u8(static_cast<std::uint8_t>(ControlType::kCreateReply));
      w.u64(*req_id);
      w.u64(*st_id);
      w.u8(ok ? 1 : 0);
      send_control(ps, std::move(reply));
      break;
    }
    case ControlType::kPrepareRequest: {
      // Make-before-break staging: same as kCreateRequest, but data is
      // still flowing on the old channel, so an in-progress reassembly may
      // yet complete — refresh the entry without discarding it. The reply
      // reuses kCreateReply (the sender's request/reply plumbing matches on
      // request id, not type).
      auto req_id = r.u64();
      auto st_id = r.u64();
      auto port = r.u64();
      auto security = r.u8();
      if (!req_id || !st_id || !port || !security) return;
      const bool trusted = ps.fabric != nullptr && ps.fabric->traits().trusted;
      const bool ok = ps.peer_verified || trusted;
      if (ok) {
        auto [eit, inserted] = demux_.try_emplace({src, *st_id});
        (void)inserted;
        DemuxEntry& entry = eit->second;
        entry.src = src;
        entry.st_id = *st_id;
        entry.target = Label{host_, *port};
        entry.security = *security;
        if (auto net_name = r.sized_bytes()) {
          entry.ack_fabric = fabric_named(*net_name);
        }
      }
      Bytes reply;
      Writer w(reply);
      w.u8(static_cast<std::uint8_t>(ControlType::kCreateReply));
      w.u64(*req_id);
      w.u64(*st_id);
      w.u8(ok ? 1 : 0);
      send_control(ps, std::move(reply));
      break;
    }
    case ControlType::kCreateReply: {
      auto req_id = r.u64();
      auto st_id = r.u64();
      auto ok = r.u8();
      if (!req_id || !st_id || !ok) return;
      auto it = ps.pending_replies.find(*req_id);
      if (it != ps.pending_replies.end()) {
        sim_.cancel(it->second.retry_timer);
        auto cb = std::move(it->second.cb);
        ps.pending_replies.erase(it);
        cb(*ok != 0);
      }
      break;
    }
    case ControlType::kDelete: {
      auto st_id = r.u64();
      if (!st_id) return;
      auto it = demux_.find({src, *st_id});
      if (it != demux_.end()) {
        discard_partial(it->second);
        demux_.erase(it);
      }
      break;
    }
    case ControlType::kFastAck: {
      auto st_id = r.u64();
      auto ack_id = r.u64();
      if (!st_id || !ack_id) return;
      auto it = streams_.find(*st_id);
      if (it == streams_.end()) break;
      StRms& stream = *it->second;
      // Any tracked ack — client-requested or internal handoff — measures
      // a data round trip over the stream's current channel.
      if (auto sent = stream.ack_sent_at_.find(*ack_id);
          sent != stream.ack_sent_at_.end()) {
        const Time rtt = sim_.now() - sent->second;
        if (fast_ack_rtt_hist_ != nullptr && (*ack_id & kHandoffAckBit) == 0) {
          fast_ack_rtt_hist_->observe(static_cast<std::uint64_t>(rtt));
        }
        if (observer_ != nullptr) {
          auto cit = channels_.find(stream.channel_id_);
          observer_->on_data_ack(
              stream.peer_,
              cit != channels_.end() ? cit->second->fabric : nullptr, rtt);
        }
        stream.ack_sent_at_.erase(sent);
      }
      trim_handoff(stream, *ack_id);
      if ((*ack_id & kHandoffAckBit) != 0) {
        // Internal handoff-trim ack: never surfaces to the client.
        ++stats_.handoff_acks;
        break;
      }
      if (stream.ack_cb_) {
        ++stats_.fast_acks_delivered;
        stream.ack_cb_(*ack_id);
      }
      break;
    }
  }
}

void SubtransportLayer::on_data_message(rms::Message msg) {
  // Pre-scan components to charge the exact receive-side CPU cost
  // (decryption and MAC verification are per-byte, §4.1).
  const netrms::CostModel cost;
  Time cpu_cost = 0;
  {
    Reader r(msg.data);
    auto tag = r.u8();
    auto count = r.u8();
    if (!tag || *tag != kStDataTag || !count) return;
    for (int i = 0; i < *count; ++i) {
      if (!r.u64() || !r.u64() || !r.i64()) return;
      auto flags = r.u8();
      if (!flags) return;
      if (*flags & kFragment) {
        if (!r.u16() || !r.u16()) return;
      }
      if (*flags & kAckRequest) {
        if (!r.u64()) return;
      }
      if (*flags & kMac) {
        if (!r.u64()) return;
      }
      auto size = r.u32();
      if (!size || !r.skip(*size)) return;
      cpu_cost += cost.message_cost(*size, false, (*flags & kEncrypted) != 0,
                                    (*flags & kMac) != 0);
    }
  }
  cpu_.submit(sim_.now() + config_.cpu_stage_allowance, cpu_cost,
              [this, msg = std::move(msg)]() mutable { handle_data(std::move(msg)); });
}

void SubtransportLayer::handle_data(rms::Message msg) {
  const HostId src = msg.source.host;
  Reader r(msg.data);
  (void)r.u8();  // tag, validated in the pre-scan
  auto count = r.u8();
  if (!count) return;

  const Key key = derive_pair_key(host_, src);

  for (int i = 0; i < *count; ++i) {
    auto st_id = r.u64();
    auto seq = r.u64();
    auto sent_at = r.i64();
    auto flags = r.u8();
    if (!st_id || !seq || !sent_at || !flags) return;
    std::uint16_t frag_index = 0, frag_count = 1;
    if (*flags & kFragment) {
      auto fi = r.u16();
      auto fc = r.u16();
      if (!fi || !fc) return;
      frag_index = *fi;
      frag_count = *fc;
    }
    std::uint64_t ack_id = 0;
    if (*flags & kAckRequest) {
      auto a = r.u64();
      if (!a) return;
      ack_id = *a;
    }
    std::uint64_t mac = 0;
    if (*flags & kMac) {
      auto m = r.u64();
      if (!m) return;
      mac = *m;
    }
    auto size = r.u32();
    if (!size) return;
    const std::size_t body_at = r.pos();
    if (!r.skip(*size)) return;
    // Zero-copy receive: the body is a slice of the packet buffer the
    // network delivered; it travels upward without being materialized.
    Buffer body = msg.data.slice(body_at, *size);

    auto eit = demux_.find({src, *st_id});
    if (eit == demux_.end()) {
      ++stats_.unknown_dropped;
      continue;
    }
    DemuxEntry& entry = eit->second;

    if (*flags & kMac) {
      if (xtea_mac(key, component_nonce(*st_id, *seq, frag_index), body.view()) !=
          mac) {
        ++stats_.auth_drops;
        continue;
      }
    }
    if (*flags & kEncrypted) {
      // Decryption mutates; copy-on-write gives this component its own
      // storage (the packet buffer is still shared with the reader).
      xtea_ctr_crypt(key, component_nonce(*st_id, *seq, frag_index), body.mutate());
    }

    // Fast acknowledgement (§3.2): the receiving ST acks immediately,
    // without involving the receiving client — but only for components it
    // actually accepts. A stale component (a replay of something already
    // delivered, or a reordered straggler the sequence moved past) is
    // dropped unacknowledged: acking it would tell the sender a message
    // was delivered that never reached the client. Fragmented components
    // ack only at reassembly completion (fragments are never
    // retransmitted, so until the last one lands the message can still be
    // lost). The ack returns over the fabric the data arrived on
    // (entry.ack_fabric), so ack loss implicates the path that actually
    // carries the stream.
    auto send_fast_ack = [&](DemuxEntry& entry_ref, std::uint64_t id_to_ack) {
      PeerState& ps = peer_state(src);
      Bytes ack;
      Writer w(ack);
      w.u8(static_cast<std::uint8_t>(ControlType::kFastAck));
      w.u64(*st_id);
      w.u64(id_to_ack);
      ++stats_.fast_acks_sent;
      trace("st.fastack", "ack " + std::to_string(id_to_ack) + " for stream " +
                              std::to_string(*st_id) + " -> host " +
                              std::to_string(src));
      if (entry_ref.ack_fabric != nullptr) {
        send_control_on(ps, *entry_ref.ack_fabric, std::move(ack));
      } else {
        send_control(ps, std::move(ack));
      }
    };

    if ((*flags & kFragment) == 0) {
      // §4.3: a newer message obsoletes the incomplete one.
      discard_partial(entry);
      if (*seq < entry.next_expected_seq) {
        ++stats_.stale_dropped;
        continue;
      }
      if (*flags & kAckRequest) send_fast_ack(entry, ack_id);
      entry.next_expected_seq = *seq + 1;
      deliver_component(entry, *seq, std::move(body), *sent_at);
      continue;
    }

    // Fragment path.
    if (*seq < entry.next_expected_seq) {
      ++stats_.stale_dropped;
      continue;
    }
    if (!entry.partial || entry.partial_seq != *seq) {
      discard_partial(entry);
      entry.partial = true;
      entry.partial_seq = *seq;
      entry.partial_count = frag_count;
      entry.partial_received = 0;
      entry.partial_fragments.assign(frag_count, Buffer{});
      entry.partial_sent_at = *sent_at;
    }
    if (*flags & kAckRequest) {
      // Only fragment 0 carries the ack request; record it for the
      // reassembly-complete branch below.
      entry.partial_ack_requested = true;
      entry.partial_ack_id = ack_id;
    }
    if (frag_index < entry.partial_count &&
        entry.partial_fragments[frag_index].empty()) {
      entry.partial_fragments[frag_index] = std::move(body);
      ++entry.partial_received;
    }
    if (entry.partial_received == entry.partial_count) {
      // The one copy a fragmented delivery pays: materialization at final
      // reassembly. Until here every fragment was a slice of its packet.
      Buffer whole = Buffer::concat(entry.partial_fragments);
      entry.partial = false;
      entry.partial_fragments.clear();
      entry.next_expected_seq = *seq + 1;
      ++stats_.reassembled;
      trace("st.reassemble", "stream " + std::to_string(*st_id) + " seq " +
                                 std::to_string(*seq) + " complete (" +
                                 std::to_string(whole.size()) + " B)");
      if (entry.partial_ack_requested) {
        entry.partial_ack_requested = false;
        send_fast_ack(entry, entry.partial_ack_id);
      }
      deliver_component(entry, *seq, std::move(whole), entry.partial_sent_at);
    }
  }
}

void SubtransportLayer::discard_partial(DemuxEntry& entry) {
  if (!entry.partial) return;
  ++stats_.partials_discarded;
  stats_.partial_fragments_discarded += entry.partial_received;
  for (const Buffer& piece : entry.partial_fragments) {
    stats_.partial_bytes_discarded += piece.size();
  }
  trace("st.discard",
        "stream " + std::to_string(entry.st_id) + " seq " +
            std::to_string(entry.partial_seq) + " dropped with " +
            std::to_string(entry.partial_received) + "/" +
            std::to_string(entry.partial_count) + " fragments");
  entry.partial = false;
  entry.partial_fragments.clear();
  entry.partial_received = 0;
  entry.partial_ack_requested = false;
}

void SubtransportLayer::deliver_component(DemuxEntry& entry, std::uint64_t seq,
                                          Buffer data, Time sent_at) {
  (void)seq;
  rms::Port* port = ports_.find(entry.target.port);
  if (port == nullptr) {
    ++stats_.unknown_dropped;
    return;
  }
  rms::Message out;
  out.data = std::move(data);
  out.source = Label{entry.src, entry.st_id};
  out.target = entry.target;
  out.sent_at = sent_at;
  ++stats_.messages_delivered;
  if (delivery_delay_hist_ != nullptr && sent_at >= 0) {
    delivery_delay_hist_->observe(static_cast<std::uint64_t>(sim_.now() - sent_at));
  }
  port->deliver(std::move(out), sim_.now());
}

// ---------------------------------------------------------------- teardown

void SubtransportLayer::release_stream(StRms& rms) {
  if (streams_.erase(rms.id_) == 0) return;  // already released
  abort_rebind(rms.id_);  // a staged replacement dies with its stream
  if (observer_ != nullptr) observer_->on_stream_released(rms);
  // In-flight ack timestamps and handoff entries die with the stream (they
  // are per-stream and capped, so a closed stream frees its tracking
  // immediately).
  rms.ack_sent_at_.clear();
  rms.ack_order_.clear();
  rms.handoff_.clear();
  rms.handoff_bytes_ = 0;

  trace("st.close", "stream " + std::to_string(rms.id_));
  auto pit = peers_.find(rms.peer_);
  if (pit != peers_.end() && pit->second.control_out != nullptr) {
    Bytes payload;
    Writer w(payload);
    w.u8(static_cast<std::uint8_t>(ControlType::kDelete));
    w.u64(rms.id_);
    send_control(pit->second, std::move(payload));
  }

  detach_channel(rms);
}

void SubtransportLayer::detach_channel(StRms& rms) {
  auto cit = channels_.find(rms.channel_id_);
  if (cit == channels_.end()) return;
  Channel& ch = *cit->second;
  flush_channel(ch);
  ch.capacity_used -= std::min(ch.capacity_used, rms.params().capacity);
  if (--ch.ref_count > 0) return;

  if (config_.enable_caching && ch.net_rms != nullptr && !ch.net_rms->failed()) {
    // §4.2: retain the idle network RMS; expire it after the idle timeout.
    // A failed network RMS is never worth caching — a later cache hit
    // would hand the client a dead stream.
    ch.cached = true;
    const std::uint64_t id = ch.id;
    sim_.cancel(ch.cache_timer);
    ch.cache_timer = sim_.timer_after(config_.cache_idle_timeout,
                                      [this, id] { expire_channel(id); });
  } else {
    release_channel(ch);
  }
}

void SubtransportLayer::cancel_channel_timers(Channel& ch) {
  sim_.cancel(ch.flush_timer);
  sim_.cancel(ch.cache_timer);
}

void SubtransportLayer::release_channel(Channel& ch) {
  const std::uint64_t id = ch.id;
  cancel_channel_timers(ch);
  if (ch.net_rms != nullptr && ch.net_rms->failed()) {
    // We may be executing inside this network RMS's own failure callback
    // (path failover detaches the channel from within on_channel_failed);
    // destroying it here would free the closure mid-execution. Park the
    // handle and let the event loop reclaim it.
    dead_net_rms_.push_back(std::move(ch.net_rms));
    if (!graveyard_flush_scheduled_) {
      graveyard_flush_scheduled_ = true;
      graveyard_timer_ = sim_.timer_after(0, [this] {
        graveyard_flush_scheduled_ = false;
        dead_net_rms_.clear();
      });
    }
  }
  channels_.erase(id);
}

void SubtransportLayer::expire_channel(std::uint64_t channel_id) {
  auto it = channels_.find(channel_id);
  if (it == channels_.end()) return;
  if (!it->second->cached) return;
  cancel_channel_timers(*it->second);
  channels_.erase(it);
}

void SubtransportLayer::congestion_channel_streams(std::uint64_t channel_id) {
  ++stats_.quench_signals;
  for (auto& [id, rms] : streams_) {
    (void)id;
    if (rms->channel_id_ == channel_id) rms->signal_congestion();
  }
}

void SubtransportLayer::fail_channel_streams(std::uint64_t channel_id, const Error& e) {
  auto cit = channels_.find(channel_id);
  const HostId peer = cit != channels_.end() ? cit->second->peer : 0;
  netrms::NetRmsFabric* fabric =
      cit != channels_.end() ? cit->second->fabric : nullptr;
  // Staged rebinds whose replacement channel just died are worthless: drop
  // them first, so the capacity share is returned and an observer reacting
  // to the stream failure below cannot commit onto a dead channel.
  std::vector<std::uint64_t> dead_staged;
  for (auto& [sid, sr] : staged_) {
    if (sr.channel_id == channel_id) dead_staged.push_back(sid);
  }
  for (std::uint64_t sid : dead_staged) abort_rebind(sid);
  // Collect ids and re-find each: a failure (or rebind) callback may close
  // other streams and mutate streams_ under us.
  std::vector<std::uint64_t> victims;
  for (auto& [id, rms] : streams_) {
    if (rms->channel_id_ == channel_id) victims.push_back(id);
  }
  for (std::uint64_t id : victims) {
    auto it = streams_.find(id);
    if (it == streams_.end()) continue;
    StRms* rms = it->second;
    if (observer_ != nullptr && observer_->on_channel_failed(*rms, e)) {
      continue;  // re-homed onto another network; client never sees it
    }
    rms->fail(e);
  }
  // The failure came from the network: any idle cached channel to the same
  // peer *on that network* is equally dead, so drop them instead of handing
  // them out later. Cached channels on other networks stay valid.
  if (peer != 0) {
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (it->second->peer == peer && it->second->cached &&
          (fabric == nullptr || it->second->fabric == fabric)) {
        ++stats_.cache_invalidations;
        cancel_channel_timers(*it->second);
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SubtransportLayer::invalidate_peer(HostId peer) {
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (it->second->peer == peer && it->second->cached) {
      ++stats_.cache_invalidations;
      cancel_channel_timers(*it->second);
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
  // Forget control and authentication state: the restarted peer has lost
  // its side of the handshake, so the next conversation re-authenticates.
  // Outstanding control retransmits die with it.
  auto pit = peers_.find(peer);
  if (pit != peers_.end()) {
    for (auto& [req_id, pr] : pit->second.pending_replies) {
      (void)req_id;
      sim_.cancel(pr.retry_timer);
    }
    peers_.erase(pit);
  }
  for (auto it = demux_.begin(); it != demux_.end();) {
    if (it->first.first == peer) {
      discard_partial(it->second);
      it = demux_.erase(it);
    } else {
      ++it;
    }
  }
  trace("st.invalidate", "forgot cached state for host " + std::to_string(peer));
}

}  // namespace dash::st
