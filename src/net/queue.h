// Transmit queues with pluggable discipline (paper §4.1, §4.3.1).
//
// "For network RMS, deadlines are used to determine the order in which
// packets are queued for transmission on a network interface." The deadline
// discipline is stable EDF over (deadline, seq), which yields exactly the
// paper's refinement of sequenced delivery: if packet A is enqueued after B
// with a deadline >= B's, then B leaves first. FIFO and static-priority
// disciplines exist as the baselines the paper argues against.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "net/packet.h"

namespace dash::net {

enum class Discipline : std::uint8_t { kDeadline, kFifo, kPriority };

const char* discipline_name(Discipline d);

/// A byte-bounded drop-tail transmit queue.
class TxQueue {
 public:
  /// `byte_capacity` bounds total queued payload bytes; pushes beyond it
  /// are dropped (and counted). 0 means unbounded.
  explicit TxQueue(Discipline d, std::uint64_t byte_capacity = 0)
      : discipline_(d), byte_capacity_(byte_capacity) {}

  /// Enqueues; returns false (drop) on overflow.
  bool push(Packet p) {
    if (byte_capacity_ != 0 && bytes_ + p.size() > byte_capacity_) {
      ++dropped_;
      dropped_bytes_ += p.size();
      return false;
    }
    bytes_ += p.size();
    ++pushed_;
    heap_.push(Entry{std::move(p), discipline_, next_arrival_++});
    return true;
  }

  /// Removes and returns the most urgent packet per the discipline.
  std::optional<Packet> pop() {
    if (heap_.empty()) return std::nullopt;
    // The heap stores const refs; copy out before pop.
    Packet p = heap_.top().packet;
    heap_.pop();
    bytes_ -= p.size();
    return p;
  }

  /// The deadline of the most urgent packet (kTimeNever when empty).
  Time head_deadline() const {
    return heap_.empty() ? kTimeNever : heap_.top().packet.deadline;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t packets() const { return heap_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t byte_capacity() const { return byte_capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }
  std::uint64_t pushed() const { return pushed_; }
  Discipline discipline() const { return discipline_; }

 private:
  struct Entry {
    Packet packet;
    Discipline discipline;
    std::uint64_t arrival;
  };

  struct LessUrgent {
    bool operator()(const Entry& a, const Entry& b) const {
      switch (a.discipline) {
        case Discipline::kDeadline:
          if (a.packet.deadline != b.packet.deadline)
            return a.packet.deadline > b.packet.deadline;
          break;
        case Discipline::kFifo:
          break;
        case Discipline::kPriority:
          if (a.packet.priority != b.packet.priority)
            return a.packet.priority > b.packet.priority;
          break;
      }
      return a.arrival > b.arrival;  // stable among equals
    }
  };

  Discipline discipline_;
  std::uint64_t byte_capacity_;
  std::priority_queue<Entry, std::vector<Entry>, LessUrgent> heap_;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t next_arrival_ = 0;
};

}  // namespace dash::net
