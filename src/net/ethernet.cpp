#include "net/ethernet.h"

#include <cassert>

namespace dash::net {

NetworkTraits ethernet_traits(std::string name) {
  NetworkTraits t;
  t.name = std::move(name);
  t.physical_broadcast = true;
  t.bits_per_second = 10'000'000;
  t.propagation_delay = usec(10);
  t.max_packet_bytes = 1500;
  t.bit_error_rate = 0.0;
  t.buffer_bytes = 64 * 1024;
  t.rms_setup_cost = msec(1);
  return t;
}

EthernetNetwork::EthernetNetwork(sim::Simulator& sim, NetworkTraits traits,
                                 std::uint64_t seed, Discipline discipline)
    : Network(sim, std::move(traits)), discipline_(discipline), rng_(seed) {}

void EthernetNetwork::set_down(bool down) {
  const bool was_down = this->down();
  Network::set_down(down);
  if (down && !was_down) notify_down();
}

void EthernetNetwork::attach(HostId host, PacketSink sink) {
  auto iface = std::make_unique<Interface>(discipline_, traits_.buffer_bytes);
  iface->sink = std::move(sink);
  interfaces_[host] = std::move(iface);
}

bool EthernetNetwork::attached(HostId host) const {
  return interfaces_.count(host) != 0;
}

void EthernetNetwork::detach(HostId host) {
  auto it = interfaces_.find(host);
  if (it == interfaces_.end()) return;
  // Frames still queued at the interface never reach the medium. In-flight
  // frames (already popped by transmit) deliver or drop via find() below.
  stats_.dropped += it->second->queue.packets();
  interfaces_.erase(it);
}

std::uint64_t EthernetNetwork::interface_backlog(HostId host) const {
  auto it = interfaces_.find(host);
  return it == interfaces_.end() ? 0 : it->second->queue.bytes();
}

std::uint64_t EthernetNetwork::interface_dropped(HostId host) const {
  auto it = interfaces_.find(host);
  return it == interfaces_.end() ? 0 : it->second->queue.dropped();
}

bool EthernetNetwork::send(Packet p) {
  auto it = interfaces_.find(p.src);
  if (it == interfaces_.end() || down_) {
    ++stats_.dropped;
    return false;
  }
  if (p.size() > traits_.max_packet_bytes) {
    // Hardware frame limit: oversized sends are a programming error in the
    // layer above (the ST fragments); drop and count.
    ++stats_.dropped;
    return false;
  }
  p.seq = next_seq();
  if (!it->second->queue.push(std::move(p))) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.sent;
  if (!medium_busy_) arbitrate();
  return true;
}

void EthernetNetwork::arbitrate() {
  // Grant the interface whose head packet is most urgent. With the
  // deadline discipline this makes the whole segment one EDF server.
  HostId best = 0;
  bool found = false;
  Time best_deadline = kTimeNever;
  std::uint64_t best_seq = 0;
  for (const auto& [host, iface] : interfaces_) {
    if (iface->queue.empty()) continue;
    const Time d = iface->queue.head_deadline();
    // For FIFO/priority disciplines head_deadline still breaks ties; the
    // per-interface queue already ordered by the discipline.
    if (!found || d < best_deadline ||
        (d == best_deadline && iface->queue.pushed() < best_seq)) {
      best = host;
      best_deadline = d;
      best_seq = iface->queue.pushed();
      found = true;
    }
  }
  if (!found) {
    medium_busy_ = false;
    return;
  }
  transmit(best);
}

void EthernetNetwork::transmit(HostId from) {
  auto& iface = *interfaces_.at(from);
  auto p = iface.queue.pop();
  assert(p.has_value());
  medium_busy_ = true;
  const Time tx = transmission_time(p->size() + 24 /* preamble+header+FCS */,
                                    traits_.bits_per_second);
  sim_.after(tx, [this, pkt = std::move(*p)]() mutable {
    sim_.after(traits_.propagation_delay,
               [this, pkt = std::move(pkt)]() mutable { deliver(std::move(pkt)); });
    arbitrate();
  });
}

void EthernetNetwork::deliver(Packet p) {
  // Scripted faults interpose on the medium: a dropped frame simply never
  // arrives; delayed frames and duplicates re-enter below (unjudged).
  if (!apply_fault_hook(p, [this](Packet q) { deliver_now(std::move(q)); })) {
    return;
  }
  deliver_now(std::move(p));
}

void EthernetNetwork::deliver_now(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return;
  }
  // Inject bit errors once for the shared medium.
  const double perr = packet_error_probability(traits_.bit_error_rate, p.size());
  if (perr > 0.0 && rng_.chance(perr)) {
    p.corrupted = true;
    if (!p.payload.empty()) {
      const auto pos = static_cast<std::size_t>(rng_.below(p.payload.size()));
      p.payload.flip_bit(pos, static_cast<std::uint8_t>(1u << rng_.below(8)));
    }
  }

  // Physical broadcast: every tap sees the frame as transmitted.
  run_taps(p);

  if (p.corrupted && traits_.hardware_checksum) {
    // Receiving interface hardware validates the FCS and discards.
    ++stats_.corrupted_dropped;
    return;
  }

  if (p.dst == kBroadcast) {
    for (auto& [host, iface] : interfaces_) {
      if (host == p.src || !iface->sink) continue;
      ++stats_.delivered;
      stats_.bytes_delivered += p.size();
      iface->sink(p);
    }
    return;
  }

  auto it = interfaces_.find(p.dst);
  if (it == interfaces_.end() || !it->second->sink) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += p.size();
  it->second->sink(std::move(p));
}

}  // namespace dash::net
