// A store-and-forward internetwork of gateways.
//
// Hosts attach to gateways (routers) over access links; gateways are joined
// by trunk links and forward hop by hop along shortest paths. Every link
// output is a deadline/FIFO/priority queue with finite buffering and
// optional per-stream reservations — the substrate for the paper's
// congestion-control claim: "if packet queueing in an internetwork gateway
// is done using RMS-specified deadlines, then a low-delay packet can be
// sent before high-delay packets" (§2.5), and RMS capacity protects
// gateway buffers where TCP's window does not (§4.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/network.h"
#include "net/routing.h"
#include "util/rng.h"

namespace dash::net {

class InternetNetwork final : public Network {
 public:
  using RouterId = RoutingEngine::RouterId;

  InternetNetwork(sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed,
                  Discipline discipline = Discipline::kDeadline);

  /// Adds a gateway. `processing_delay` is charged per forwarded packet.
  /// `area` is the routing area (region) for hierarchical tables — unused
  /// unless enable_areas(true).
  RouterId add_router(Time processing_delay = usec(50),
                      RoutingEngine::AreaId area = 0);

  /// Joins two gateways with a pair of simplex trunk links.
  void add_trunk(RouterId a, RouterId b, SimplexLink::Config config);

  /// Declares that `host` hangs off `router` over the given access link.
  void attach_host(HostId host, RouterId router, SimplexLink::Config config);

  // Network interface --------------------------------------------------
  void attach(HostId host, PacketSink sink) override;
  bool attached(HostId host) const override;
  void detach(HostId host) override;
  bool send(Packet p) override;
  bool reserve_stream(std::uint64_t stream, HostId src, HostId dst,
                      std::uint64_t bytes) override;
  void release_stream(std::uint64_t stream) override;
  void set_down(bool down) override;

  /// Failure injection on a single trunk (both directions). The routing
  /// engine repairs the affected tables around (or back across) the
  /// trunk — incrementally by default, globally in the reference mode.
  void set_trunk_down(RouterId a, RouterId b, bool down);

  /// The pluggable routing engine (mode, ECMP tables, route stats). The
  /// forwarding policy can be swapped beneath the Network interface
  /// without touching anything above it.
  RoutingEngine& routing() { return engine_; }
  const RoutingEngine& routing() const { return engine_; }

  /// Switches the engine to hierarchical per-area tables; router areas
  /// come from add_router. Call during topology construction.
  void enable_areas(bool on) { engine_.enable_areas(on); }

  /// ICMP-source-quench-style congestion signalling (RFC 896), which the
  /// paper calls "an ad hoc and often ineffective solution" (§4.4): when a
  /// gateway queue drops a packet, a small quench packet is sent back to
  /// the source. Used by the TCP-like baseline; RMS stacks leave it off.
  void enable_source_quench(bool on) { source_quench_ = on; }

  /// Stream id of quench packets delivered to sources.
  static constexpr std::uint64_t kQuenchStream = ~0ull - 1;

  /// The gateway output queue backlog on the a→b trunk (tests/benches).
  std::uint64_t trunk_backlog(RouterId a, RouterId b) const;
  const SimplexLink::Stats* trunk_stats(RouterId a, RouterId b) const;

  /// Total packets dropped at gateway queues (congestion indicator).
  std::uint64_t gateway_drops() const;

  /// Gateway drops by cause (also mirrored into telemetry as
  /// net.<prefix>.drop.* by collect_internet). These used to vanish into
  /// the aggregate Stats::dropped.
  struct DropStats {
    std::uint64_t trunk_full = 0;  ///< next-hop trunk queue rejected the packet
    std::uint64_t no_route = 0;    ///< unknown destination host or partition
    std::uint64_t access = 0;      ///< dead/full access link at the last hop
  };
  const DropStats& drop_stats() const { return drops_; }

  /// Number of hops a src→dst packet traverses (access links excluded).
  std::size_t route_hops(HostId src, HostId dst) const;

 private:
  struct Router {
    Time processing_delay;
    // Hash maps: these sit on the per-packet forwarding path, and nothing
    // iterates them in an order-sensitive way (route computation lives in
    // the RoutingEngine over its own sorted flat adjacency).
    // Neighbor router -> outgoing trunk link.
    std::unordered_map<RouterId, std::unique_ptr<SimplexLink>> trunks;
    // Locally attached host -> outgoing access link.
    std::unordered_map<HostId, std::unique_ptr<SimplexLink>> access_down;
  };

  struct HostPort {
    RouterId router = 0;
    std::unique_ptr<SimplexLink> access_up;  // host -> router
    PacketSink sink;
    // Detached hosts keep their port (in-flight link closures reference the
    // access links) but lose the sink and the right to send.
    bool detached = false;
  };

  void forward(RouterId at, Packet p);
  void deliver(Packet p);      ///< fault-hook entry point (host delivery)
  void deliver_now(Packet p);  ///< post-hook delivery to the host sink
  /// The trunk links a (src, dst, stream) flow traverses — the same
  /// ECMP choices forwarding will make for that flow key.
  std::vector<SimplexLink*> path_links(HostId src, HostId dst,
                                       std::uint64_t stream = 0);

  void send_quench(HostId to, std::uint64_t dropped_stream);

  Discipline discipline_;
  Rng rng_;
  RoutingEngine engine_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::map<HostId, HostPort> hosts_;
  bool source_quench_ = false;
  DropStats drops_;
  std::map<std::uint64_t, std::vector<SimplexLink*>> stream_reservations_;
};

/// Canonical traits for a wide-area internetwork (56 kb/s trunks in the
/// paper's era would starve the benches; we use T1-class 1.5 Mb/s trunks
/// with 20 ms propagation — "high-delay long-distance networks" §1).
NetworkTraits internet_traits(std::string name = "internet");

/// Default trunk link configuration matching internet_traits().
SimplexLink::Config internet_trunk_config(const NetworkTraits& traits,
                                          Discipline discipline);

/// Builds the standard two-gateway dumbbell used by tests and benches:
/// hosts `left` attach to gateway L, hosts `right` to gateway R, one trunk
/// L—R. Returns the network.
std::unique_ptr<InternetNetwork> make_dumbbell(
    sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed,
    const std::vector<HostId>& left, const std::vector<HostId>& right,
    Discipline discipline = Discipline::kDeadline);

}  // namespace dash::net
