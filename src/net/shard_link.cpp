#include "net/shard_link.h"

#include <cassert>
#include <utility>

namespace dash::net {

ShardLinkNetwork::ShardLinkNetwork(sim::ShardContext& a, sim::ShardContext& b,
                                   NetworkTraits traits)
    : Network(a.sim(), std::move(traits)) {
  sides_[0].ctx = &a;
  sides_[1].ctx = &b;
  set_shard(a.shard());
  // Allocate a key for every link, cross-shard or not: allocation follows
  // topology construction order, so a given link's key is the same under
  // every shard count (the determinism rule needs keys to be shard-stable,
  // not merely unique).
  key_ = a.owner().allocate_link_key();
  if (a.shard() != b.shard()) {
    a.owner().declare_cross_link(traits_.propagation_delay);
  }
}

void ShardLinkNetwork::attach_on(sim::ShardContext& ctx, HostId host,
                                 PacketSink sink) {
  for (Side& s : sides_) {
    if (s.ctx == &ctx && !s.bound) {
      s.host = host;
      s.sink = std::move(sink);
      s.bound = true;
      return;
    }
  }
  assert(false && "attach_on: context is not an unbound side of this link");
}

void ShardLinkNetwork::attach(HostId host, PacketSink sink) {
  (void)host, (void)sink;
  assert(false && "ShardLinkNetwork: use attach_on(ctx, host, sink)");
}

bool ShardLinkNetwork::attached(HostId host) const {
  return side_of_host(host) >= 0;
}

void ShardLinkNetwork::detach(HostId host) {
  const int s = side_of_host(host);
  if (s < 0) return;
  Side& side = sides_[s];
  side.bound = false;
  side.sink = nullptr;
  // Serialization in progress still runs (transmit closures index by
  // side), but arrivals on a sinkless side count as dropped.
  side.stats.dropped += side.queue.size();
  side.queue.clear();
  side.queued_bytes = 0;
}

int ShardLinkNetwork::side_of_host(HostId host) const {
  for (int i = 0; i < 2; ++i) {
    if (sides_[i].bound && sides_[i].host == host) return i;
  }
  return -1;
}

bool ShardLinkNetwork::send(Packet p) {
  const int s = side_of_host(p.src);
  if (s < 0 || down_) return false;
  Side& side = sides_[s];
  const Side& peer = sides_[1 - s];
  if (!peer.bound || p.dst != peer.host) {
    ++side.stats.dropped;
    return false;
  }
  if (traits_.buffer_bytes > 0 &&
      side.queued_bytes + p.size() > traits_.buffer_bytes) {
    ++side.stats.dropped;
    return false;
  }
  ++side.stats.sent;
  side.queued_bytes += p.size();
  side.queue.push_back(std::move(p));
  if (!side.busy) transmit(s);
  return true;
}

void ShardLinkNetwork::transmit(int s) {
  Side& side = sides_[s];
  if (side.queue.empty()) {
    side.busy = false;
    return;
  }
  side.busy = true;
  Packet p = std::move(side.queue.front());
  side.queue.pop_front();
  side.queued_bytes -= p.size();
  const Time tx = transmission_time(p.size() + 24 /* framing */,
                                    traits_.bits_per_second);
  side.ctx->sim().after(tx, [this, s, p = std::move(p)]() mutable {
    depart(s, std::move(p));
    transmit(s);
  });
}

void ShardLinkNetwork::depart(int s, Packet p) {
  Side& side = sides_[s];
  const Side& peer = sides_[1 - s];
  const Time at = side.ctx->sim().now() + traits_.propagation_delay;
  if (side.ctx->shard() == peer.ctx->shard()) {
    side.ctx->sim().after(traits_.propagation_delay,
                          [this, s, p = std::move(p)]() mutable {
                            arrive(1 - s, std::move(p));
                          });
    return;
  }
  // The only cross-shard hop. Key per direction so two directions of one
  // link sort deterministically even at equal timestamps.
  side.ctx->post(peer.ctx->shard(), at, key_ * 2 + static_cast<std::uint64_t>(s),
                 [this, s, p = std::move(p)]() mutable {
                   arrive(1 - s, std::move(p));
                 });
}

void ShardLinkNetwork::arrive(int s, Packet p) {
  Side& side = sides_[s];
  if (!side.sink) {
    ++side.stats.dropped;
    return;
  }
  ++side.stats.delivered;
  side.stats.bytes_delivered += p.size();
  side.sink(std::move(p));
}

const Network::Stats& ShardLinkNetwork::stats() const {
  merged_ = Stats{};
  for (const Side& side : sides_) {
    merged_.sent += side.stats.sent;
    merged_.delivered += side.stats.delivered;
    merged_.dropped += side.stats.dropped;
    merged_.bytes_delivered += side.stats.bytes_delivered;
  }
  return merged_;
}

}  // namespace dash::net
