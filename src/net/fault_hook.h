// Scripted-impairment hook for network media.
//
// A FaultHook interposes on packet delivery inside a concrete network
// (Ethernet, Internet host links, token ring): every packet about to cross
// the medium is first judged by the hook, which may drop it, delay it,
// duplicate it, or flip bits in its payload. The hook lives below the
// network-RMS layer, so everything above — checksums, sequencing, the ST,
// transport retransmission — sees the impairments exactly as it would see a
// misbehaving physical network. The concrete implementation (FaultInjector,
// src/fault/) is deterministic and seeded; this header keeps dash_net free
// of a dependency on it.
#pragma once

#include "net/packet.h"
#include "util/time.h"

namespace dash::net {

/// What the hook decided for one packet. Payload corruption is applied by
/// the hook itself (it owns the RNG); scheduling of delays and duplicates
/// is the network's job, so copies re-enter the same delivery path.
struct FaultVerdict {
  bool drop = false;       ///< the packet vanishes on the medium
  bool blocked = false;    ///< drop was a link-down / partition block
  bool corrupted = false;  ///< the hook flipped payload bits in place
  int duplicates = 0;      ///< extra copies to deliver after the original
  Time delay = 0;          ///< extra latency before delivery (reordering)
  Time duplicate_gap = 0;  ///< spacing between successive duplicate copies
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Judges one packet at the moment it would be delivered. May mutate the
  /// payload (corruption). Called once per original packet — duplicates and
  /// delayed copies are not re-judged.
  virtual FaultVerdict judge(Packet& p) = 0;
};

}  // namespace dash::net
