#include "net/traits.h"

#include <cmath>

#include "net/queue.h"

namespace dash::net {

const char* discipline_name(Discipline d) {
  switch (d) {
    case Discipline::kDeadline: return "deadline";
    case Discipline::kFifo: return "fifo";
    case Discipline::kPriority: return "priority";
  }
  return "?";
}

QualityLimits quality_limits(const NetworkTraits& traits, const rms::Quality& q) {
  QualityLimits out;

  if (q.reliable && traits.bit_error_rate > 0.0) {
    // The medium loses packets; the network cannot promise delivery.
    return out;
  }
  if (q.privacy && !(traits.trusted || traits.link_encryption)) {
    return out;
  }
  if (q.authenticated && !traits.trusted) {
    return out;
  }

  out.supported = true;
  out.max_bandwidth_bps = traits.bits_per_second;
  // A packet cannot arrive sooner than propagation plus the transmission
  // time of a maximum-size frame (it may queue behind one).
  out.min_delay_a = traits.propagation_delay +
                    transmission_time(traits.max_packet_bytes, traits.bits_per_second);
  out.residual_error_rate =
      packet_error_probability(traits.bit_error_rate, traits.max_packet_bytes);
  return out;
}

double packet_error_probability(double ber, std::size_t bytes) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  const double bits = 8.0 * static_cast<double>(bytes);
  return 1.0 - std::pow(1.0 - ber, bits);
}

}  // namespace dash::net
