#include "net/routing.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace dash::net {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t wall_ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

std::uint64_t RoutingEngine::flow_key(std::uint64_t src_host,
                                      std::uint64_t dst_host,
                                      std::uint64_t stream) {
  std::uint64_t x = splitmix64(src_host);
  x = splitmix64(x ^ dst_host);
  return splitmix64(x ^ stream);
}

RoutingEngine::RouterId RoutingEngine::add_router(AreaId area) {
  assert(adj_.size() < 65000 && "RouterId distance fields are 16-bit");
  assert(area < 65536 && "area ids index a dense slot table");
  const auto id = static_cast<RouterId>(adj_.size());
  adj_.emplace_back();
  area_of_.push_back(area);
  salt_.push_back(splitmix64(0x5a17u + id));
  mark_dirty();
  return id;
}

void RoutingEngine::add_link(RouterId a, RouterId b) {
  assert(a != b && a < adj_.size() && b < adj_.size());
  auto insert = [this](RouterId from, RouterId to) {
    auto& edges = adj_[from];
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), to,
        [](const Edge& e, RouterId id) { return e.to < id; });
    assert((it == edges.end() || it->to != to) && "duplicate link");
    edges.insert(it, Edge{to, true});
  };
  insert(a, b);
  insert(b, a);
  if (dirty_) return;
  if (mode_ == Mode::kFullRecompute) {
    mark_dirty();
    return;
  }
  repair(a, b, /*up=*/true);
}

void RoutingEngine::set_link_state(RouterId a, RouterId b, bool up) {
  auto find = [this](RouterId from, RouterId to) -> Edge* {
    auto& edges = adj_[from];
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), to,
        [](const Edge& e, RouterId id) { return e.to < id; });
    return (it != edges.end() && it->to == to) ? &*it : nullptr;
  };
  assert(a < adj_.size() && b < adj_.size());
  Edge* ab = find(a, b);
  Edge* ba = find(b, a);
  assert(ab && ba && "set_link_state on a link that was never added");
  if (ab->up == up) return;  // idempotent flaps are free
  ab->up = up;
  ba->up = up;
  if (dirty_) return;
  if (mode_ == Mode::kFullRecompute) {
    mark_dirty();
    return;
  }
  repair(a, b, up);
}

void RoutingEngine::enable_areas(bool on) {
  if (areas_ == on) return;
  areas_ = on;
  mark_dirty();
}

void RoutingEngine::set_mode(Mode m) {
  if (mode_ == m) return;
  mode_ = m;
  // Rebuild from scratch so the new mode's tables carry no history. The
  // distance fields are unique, so a fresh build equals the repaired
  // state — which is exactly what the equivalence gates assert.
  mark_dirty();
}

// ---------------------------------------------------------------- fields

template <typename Neighbors>
void RoutingEngine::build_field(std::uint16_t* dist, std::size_t n,
                                const std::uint32_t* sources,
                                std::size_t n_sources, Neighbors&& nb) {
  std::fill(dist, dist + n, kUnreachable);
  auto& q = worklist_;
  q.clear();
  for (std::size_t i = 0; i < n_sources; ++i) {
    dist[sources[i]] = 0;
    q.push_back(sources[i]);
  }
  for (std::size_t head = 0; head < q.size(); ++head) {
    const std::uint32_t u = q[head];
    const std::uint16_t du = dist[u];
    nb(u, [&](std::uint32_t v) {
      if (dist[v] == kUnreachable) {
        dist[v] = static_cast<std::uint16_t>(du + 1);
        q.push_back(v);
      }
    });
  }
}

template <typename Neighbors>
std::size_t RoutingEngine::repair_field_down(std::uint16_t* dist,
                                             std::uint32_t ia, std::uint32_t ib,
                                             Neighbors&& nb) {
  const int da = dist[ia];
  const int db = dist[ib];
  if (da == db) return 0;  // slack edge (or both unreachable): no change
  const std::uint32_t hi = da > db ? ia : ib;
  const int dhi = std::max(da, db);
  const int dlo = std::min(da, db);
  if (dhi != dlo + 1) return 0;  // not on any shortest path
  // Alternate parent: the downed edge is already out of the neighbor
  // view, so any surviving one-level-closer neighbor keeps hi's distance
  // (and therefore every distance downstream of it) unchanged.
  bool alive = false;
  nb(hi, [&](std::uint32_t v) {
    if (static_cast<int>(dist[v]) == dhi - 1) alive = true;
  });
  if (alive) return 0;

  // Collect the affected subtree level by level: a router is affected
  // iff every parent in the shortest-path DAG is affected. Parents sit
  // exactly one level closer, so marks at level L are final before any
  // level-L+1 candidate is judged.
  std::vector<std::uint32_t> affected{hi};
  mark_[hi] = 1;
  std::vector<std::uint32_t> frontier{hi};
  std::vector<std::uint32_t> cands;
  std::vector<std::uint32_t> next;
  int level = dhi;
  while (!frontier.empty()) {
    cands.clear();
    for (std::uint32_t r : frontier) {
      nb(r, [&](std::uint32_t v) {
        if (static_cast<int>(dist[v]) == level + 1 && !seen_[v]) {
          seen_[v] = 1;
          cands.push_back(v);
        }
      });
    }
    next.clear();
    for (std::uint32_t c : cands) {
      seen_[c] = 0;
      bool parent_alive = false;
      nb(c, [&](std::uint32_t v) {
        if (static_cast<int>(dist[v]) == level && !mark_[v]) parent_alive = true;
      });
      if (!parent_alive) {
        mark_[c] = 1;
        next.push_back(c);
        affected.push_back(c);
      }
    }
    frontier.swap(next);
    ++level;
  }

  // Re-settle the affected set with a bounded bucket-queue Dijkstra.
  // Unaffected neighbors are fixed boundary conditions (their shortest
  // paths avoid the affected region, so their distances are untouched).
  int max_used = -1;
  auto push = [&](int d, std::uint32_t r) {
    if (buckets_[static_cast<std::size_t>(d)].empty()) {
      used_buckets_.push_back(static_cast<std::uint32_t>(d));
    }
    buckets_[static_cast<std::size_t>(d)].push_back(r);
    max_used = std::max(max_used, d);
  };
  for (std::uint32_t r : affected) dist[r] = kUnreachable;
  for (std::uint32_t r : affected) {
    int best = kUnreachable;
    nb(r, [&](std::uint32_t v) {
      if (!mark_[v] && dist[v] != kUnreachable) {
        best = std::min(best, static_cast<int>(dist[v]) + 1);
      }
    });
    if (best != kUnreachable) {
      dist[r] = static_cast<std::uint16_t>(best);
      push(best, r);
    }
  }
  for (int d = dhi; d <= max_used; ++d) {
    auto& bucket = buckets_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {  // may grow at d+1 only
      const std::uint32_t r = bucket[i];
      if (static_cast<int>(dist[r]) != d || !mark_[r]) continue;  // stale
      mark_[r] = 0;  // settled (doubles as scratch cleanup)
      nb(r, [&](std::uint32_t v) {
        if (mark_[v] && static_cast<int>(dist[v]) > d + 1) {
          dist[v] = static_cast<std::uint16_t>(d + 1);
          push(d + 1, v);
        }
      });
    }
  }
  for (std::uint32_t r : affected) mark_[r] = 0;  // the unreachable leftovers
  for (std::uint32_t d : used_buckets_) buckets_[d].clear();
  used_buckets_.clear();
  return affected.size();
}

template <typename Neighbors>
std::size_t RoutingEngine::repair_field_up(std::uint16_t* dist,
                                           std::uint32_t ia, std::uint32_t ib,
                                           Neighbors&& nb) {
  int max_used = -1;
  auto push = [&](int d, std::uint32_t r) {
    if (buckets_[static_cast<std::size_t>(d)].empty()) {
      used_buckets_.push_back(static_cast<std::uint32_t>(d));
    }
    buckets_[static_cast<std::size_t>(d)].push_back(r);
    max_used = std::max(max_used, d);
  };
  const int da = dist[ia];
  const int db = dist[ib];
  int start = kUnreachable;
  if (db != kUnreachable && db + 1 < da) {
    dist[ia] = static_cast<std::uint16_t>(db + 1);
    push(db + 1, ia);
    start = db + 1;
  } else if (da != kUnreachable && da + 1 < db) {
    dist[ib] = static_cast<std::uint16_t>(da + 1);
    push(da + 1, ib);
    start = da + 1;
  }
  if (start == kUnreachable) return 0;  // the new edge is slack

  std::size_t touched = 0;
  for (int d = start; d <= max_used; ++d) {
    auto& bucket = buckets_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {  // may grow at d+1 only
      const std::uint32_t r = bucket[i];
      if (static_cast<int>(dist[r]) != d) continue;  // improved further: stale
      ++touched;
      nb(r, [&](std::uint32_t v) {
        if (static_cast<int>(dist[v]) > d + 1) {
          dist[v] = static_cast<std::uint16_t>(d + 1);
          push(d + 1, v);
        }
      });
    }
  }
  for (std::uint32_t d : used_buckets_) buckets_[d].clear();
  used_buckets_.clear();
  return touched;
}

// ----------------------------------------------------------- build/repair

void RoutingEngine::ensure_tables() {
  if (dirty_) build_all();
}

void RoutingEngine::build_all() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t r_count = adj_.size();
  mark_.assign(r_count, 0);
  seen_.assign(r_count, 0);
  buckets_.clear();
  buckets_.resize(r_count + 2);
  used_buckets_.clear();

  auto flat_nb = [this](std::uint32_t r, auto&& f) {
    for (const Edge& e : adj_[r]) {
      if (e.up) f(e.to);
    }
  };

  std::size_t touched = 0;
  if (!areas_) {
    area_tables_.clear();
    dist_.resize(r_count);
    for (std::uint32_t d = 0; d < r_count; ++d) {
      dist_[d].resize(r_count);
      build_field(dist_[d].data(), r_count, &d, 1, flat_nb);
    }
    touched = r_count * r_count;
  } else {
    dist_.clear();
    // Dense area slots in ascending area-id order (stable under any
    // construction order).
    std::vector<AreaId> ids(area_of_);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    const AreaId max_id = ids.empty() ? 0 : ids.back();
    area_slot_.assign(max_id + 1, ~0u);
    area_tables_.assign(ids.size(), Area{});
    for (std::size_t s = 0; s < ids.size(); ++s) {
      area_tables_[s].id = ids[s];
      area_slot_[ids[s]] = static_cast<std::uint32_t>(s);
    }
    local_index_.assign(r_count, 0);
    for (std::uint32_t r = 0; r < r_count; ++r) {
      Area& a = area_tables_[area_slot_[area_of_[r]]];
      local_index_[r] = static_cast<std::uint32_t>(a.members.size());
      a.members.push_back(r);
    }
    for (Area& a : area_tables_) {
      a.field.resize(r_count);
      build_field(a.field.data(), r_count, a.members.data(), a.members.size(),
                  flat_nb);
      const std::size_t sz = a.members.size();
      a.intra.resize(sz * sz);
      auto intra_nb = [this, &a](std::uint32_t lr, auto&& f) {
        for (const Edge& e : adj_[a.members[lr]]) {
          if (e.up && area_of_[e.to] == a.id) f(local_index_[e.to]);
        }
      };
      for (std::uint32_t ld = 0; ld < sz; ++ld) {
        build_field(&a.intra[ld * sz], sz, &ld, 1, intra_nb);
      }
      touched += r_count + sz * sz;
    }
  }
  dirty_ = false;
  ++stats_.full_recomputes;
  stats_.routers_touched += touched;
  stats_.recompute_ns += wall_ns_since(t0);
}

void RoutingEngine::repair(RouterId a, RouterId b, bool up) {
  const auto t0 = std::chrono::steady_clock::now();
  auto flat_nb = [this](std::uint32_t r, auto&& f) {
    for (const Edge& e : adj_[r]) {
      if (e.up) f(e.to);
    }
  };
  std::size_t touched = 0;
  if (!areas_) {
    for (auto& field : dist_) {
      touched += up ? repair_field_up(field.data(), a, b, flat_nb)
                    : repair_field_down(field.data(), a, b, flat_nb);
    }
  } else {
    for (Area& t : area_tables_) {
      touched += up ? repair_field_up(t.field.data(), a, b, flat_nb)
                    : repair_field_down(t.field.data(), a, b, flat_nb);
    }
    if (area_of_[a] == area_of_[b]) {
      Area& t = area_tables_[area_slot_[area_of_[a]]];
      const std::size_t sz = t.members.size();
      auto intra_nb = [this, &t](std::uint32_t lr, auto&& f) {
        for (const Edge& e : adj_[t.members[lr]]) {
          if (e.up && area_of_[e.to] == t.id) f(local_index_[e.to]);
        }
      };
      const std::uint32_t la = local_index_[a];
      const std::uint32_t lb = local_index_[b];
      for (std::size_t ld = 0; ld < sz; ++ld) {
        touched += up ? repair_field_up(&t.intra[ld * sz], la, lb, intra_nb)
                      : repair_field_down(&t.intra[ld * sz], la, lb, intra_nb);
      }
    }
  }
  ++stats_.repairs;
  stats_.routers_touched += touched;
  stats_.recompute_ns += wall_ns_since(t0);
}

// ---------------------------------------------------------------- queries

int RoutingEngine::tight_neighbors(RouterId at, RouterId dst, RouterId* out,
                                   int max_out) {
  int count = 0;
  auto emit = [&](RouterId n) {
    if (count < max_out) out[count] = n;
    ++count;
  };
  if (!areas_) {
    const std::uint16_t* d = dist_[dst].data();
    const int dat = d[at];
    if (dat == 0 || dat == kUnreachable) return 0;
    for (const Edge& e : adj_[at]) {
      if (e.up && static_cast<int>(d[e.to]) == dat - 1) emit(e.to);
    }
    return count;
  }
  const Area& b = area_tables_[area_slot_[area_of_[dst]]];
  if (area_of_[at] == area_of_[dst]) {
    const std::size_t sz = b.members.size();
    const std::uint16_t* d = &b.intra[local_index_[dst] * sz];
    const int dat = d[local_index_[at]];
    if (dat == 0 || dat == kUnreachable) return 0;
    for (const Edge& e : adj_[at]) {
      if (e.up && area_of_[e.to] == b.id &&
          static_cast<int>(d[local_index_[e.to]]) == dat - 1) {
        emit(e.to);
      }
    }
    return count;
  }
  // Inter-area: descend the destination area's reachability field; it
  // reaches 0 exactly when the packet enters the area, where the intra
  // table takes over.
  const std::uint16_t* m = b.field.data();
  const int mat = m[at];
  if (mat == kUnreachable) return 0;
  for (const Edge& e : adj_[at]) {
    if (e.up && static_cast<int>(m[e.to]) == mat - 1) emit(e.to);
  }
  return count;
}

RoutingEngine::RouterId RoutingEngine::pick(RouterId at, RouterId dst,
                                            std::uint64_t flow_key) {
  assert(at != dst && at < adj_.size() && dst < adj_.size());
  ensure_tables();
  const int count = tight_neighbors(at, dst, nullptr, 0);
  if (count == 0) return kNoRoute;
  // Multiply-shift: the salted key's full width selects the index, so
  // small equal-cost sets still see well-mixed bits.
  const auto idx = static_cast<int>(
      (static_cast<unsigned __int128>(flow_key ^ salt_[at]) *
       static_cast<unsigned __int128>(count)) >>
      64);
  RouterId chosen = kNoRoute;
  int i = 0;
  auto take = [&](RouterId n) {
    if (i++ == idx) chosen = n;
  };
  // Re-scan to the idx-th tight neighbor (degree is small; two passes
  // beat materializing the set).
  if (!areas_) {
    const std::uint16_t* d = dist_[dst].data();
    const int dat = d[at];
    for (const Edge& e : adj_[at]) {
      if (e.up && static_cast<int>(d[e.to]) == dat - 1) take(e.to);
    }
    return chosen;
  }
  const Area& b = area_tables_[area_slot_[area_of_[dst]]];
  if (area_of_[at] == area_of_[dst]) {
    const std::size_t sz = b.members.size();
    const std::uint16_t* d = &b.intra[local_index_[dst] * sz];
    const int dat = d[local_index_[at]];
    for (const Edge& e : adj_[at]) {
      if (e.up && area_of_[e.to] == b.id &&
          static_cast<int>(d[local_index_[e.to]]) == dat - 1) {
        take(e.to);
      }
    }
    return chosen;
  }
  const std::uint16_t* m = b.field.data();
  const int mat = m[at];
  for (const Edge& e : adj_[at]) {
    if (e.up && static_cast<int>(m[e.to]) == mat - 1) take(e.to);
  }
  return chosen;
}

int RoutingEngine::next_hops(RouterId at, RouterId dst, RouterId* out,
                             int max_out) {
  assert(at != dst && at < adj_.size() && dst < adj_.size());
  ensure_tables();
  return tight_neighbors(at, dst, out, max_out);
}

std::uint32_t RoutingEngine::distance(RouterId from, RouterId to) {
  assert(from < adj_.size() && to < adj_.size());
  if (from == to) return 0;
  ensure_tables();
  if (!areas_) {
    const std::uint16_t d = dist_[to][from];
    return d == kUnreachable ? static_cast<std::uint32_t>(kUnreachable) : d;
  }
  if (area_of_[from] == area_of_[to]) {
    const Area& a = area_tables_[area_slot_[area_of_[to]]];
    const std::uint16_t d =
        a.intra[local_index_[to] * a.members.size() + local_index_[from]];
    return d == kUnreachable ? static_cast<std::uint32_t>(kUnreachable) : d;
  }
  // Inter-area distances are only defined along the forwarding walk
  // (hierarchical routing trades optimality for table size); measure the
  // flow-key-0 path.
  std::uint32_t hops = 0;
  RouterId at = from;
  while (at != to) {
    if (hops > adj_.size()) return kUnreachable;
    const RouterId nh = pick(at, to, 0);
    if (nh == kNoRoute) return kUnreachable;
    ++hops;
    at = nh;
  }
  return hops;
}

std::uint64_t RoutingEngine::table_digest() {
  ensure_tables();
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over table entries
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  if (!areas_) {
    for (const auto& field : dist_) {
      for (std::uint16_t d : field) mix(d);
    }
  } else {
    for (const Area& a : area_tables_) {
      mix(a.id);
      for (std::uint16_t d : a.intra) mix(d);
      for (std::uint16_t d : a.field) mix(d);
    }
  }
  return h;
}

std::size_t RoutingEngine::table_entries() const {
  const std::size_t r_count = adj_.size();
  if (!areas_) return r_count * r_count;
  // Computable without a build: Σ|area|² + routers per area field.
  std::vector<std::pair<AreaId, std::size_t>> sizes;
  for (AreaId a : area_of_) {
    auto it = std::find_if(sizes.begin(), sizes.end(),
                           [a](const auto& p) { return p.first == a; });
    if (it == sizes.end()) {
      sizes.emplace_back(a, 1);
    } else {
      ++it->second;
    }
  }
  std::size_t total = 0;
  for (const auto& [id, n] : sizes) {
    (void)id;
    total += n * n + r_count;
  }
  return total;
}

}  // namespace dash::net
