// A token-ring network (IEEE 802.5 / FDDI-flavored).
//
// The second concrete network type (§3.1: "DASH allows multiple network
// types... networks are abstract entities"), and the one whose media
// access is *naturally deterministic*: a station may transmit only while
// holding the circulating token, for at most the token-holding time, so
// worst-case access delay is bounded by one token rotation —
//
//     rotation_max = stations x (holding_time + pass_time)
//
// — which is exactly the kind of hard bound deterministic RMS need
// (§2.3). Frames travel the ring, so every station sees every frame: the
// physical broadcast property holds (§3.1).
//
// Token circulation is simulated lazily: when every station's queue is
// empty the token parks, and the next send resumes it from its parked
// position (charging the true partial-rotation latency). This keeps idle
// simulations quiescent without changing any observable timing.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "net/queue.h"
#include "util/rng.h"

namespace dash::net {

class TokenRingNetwork final : public Network {
 public:
  struct RingConfig {
    /// Maximum transmission time per token visit.
    Time token_holding_time = msec(1);
    /// Token pass latency between adjacent stations (token frame +
    /// station latency + segment propagation).
    Time token_pass_time = usec(30);
    /// Physical signal propagation around the ring (frame -> destination).
    Time ring_propagation = usec(50);
  };

  TokenRingNetwork(sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed,
                   RingConfig ring, Discipline discipline = Discipline::kDeadline);
  TokenRingNetwork(sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed)
      : TokenRingNetwork(sim, std::move(traits), seed, RingConfig{}) {}

  void attach(HostId host, PacketSink sink) override;
  bool attached(HostId host) const override;
  void detach(HostId host) override;
  bool send(Packet p) override;
  void set_down(bool down) override;

  /// Worst-case token rotation time with the current station count.
  Time worst_case_rotation() const;

  /// The §2.3 deterministic access bound: rotation + one max frame + ring
  /// propagation. Used by ring-aware admission (see ring_traits()).
  Time access_bound() const;

  std::uint64_t station_backlog(HostId host) const;
  std::uint64_t token_rotations() const { return rotations_; }

 private:
  struct Station {
    HostId host = 0;
    std::unique_ptr<TxQueue> queue;
    PacketSink sink;
  };

  void grant(std::size_t index);
  bool ring_has_traffic() const;
  void deliver(Packet p);      ///< fault-hook entry point
  void deliver_now(Packet p);  ///< post-hook delivery (BER, taps, dispatch)

  RingConfig ring_;
  Discipline discipline_;
  Rng rng_;
  std::vector<Station> stations_;
  std::map<HostId, std::size_t> index_of_;
  std::size_t token_at_ = 0;
  bool token_moving_ = false;
  std::uint64_t rotations_ = 0;
};

/// Canonical traits for a 4 Mb/s token ring. The min_delay floor encoded
/// here already includes the worst-case rotation, so quality_limits() and
/// deterministic admission stay honest about media access.
NetworkTraits token_ring_traits(std::string name = "token-ring",
                                int expected_stations = 8,
                                TokenRingNetwork::RingConfig ring =
                                    TokenRingNetwork::RingConfig{});

}  // namespace dash::net
