#include "net/udp/udp.h"

#include <arpa/inet.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace dash::net {

NetworkTraits udp_traits(std::string name) {
  NetworkTraits t;
  t.name = std::move(name);
  t.trusted = false;
  t.physical_broadcast = false;
  t.link_encryption = false;
  // The wire-codec CRC plays the FCS: damaged datagrams are dropped by the
  // decoder before any sink, so layers above see an error-free medium and
  // may elide software checksums (§2.1).
  t.hardware_checksum = true;
  t.bit_error_rate = 0.0;
  t.bits_per_second = 10'000'000'000;  // loopback: not the bottleneck
  t.propagation_delay = usec(30);      // nominal loopback RTT/2 for admission
  t.max_packet_bytes = 1400;           // stay under typical MTU with headers
  t.buffer_bytes = 4 * 1024 * 1024;
  t.rms_setup_cost = msec(1);
  return t;
}

bool udp_available() {
  int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  a.sin_port = 0;
  const bool ok =
      bind(fd, reinterpret_cast<const sockaddr*>(&a), sizeof(a)) == 0;
  close(fd);
  return ok;
}

UdpNetwork::UdpNetwork(rt::Driver& driver, NetworkTraits traits, UdpConfig cfg)
    : Network(driver.simulator(), std::move(traits)),
      driver_(driver),
      cfg_(cfg) {}

UdpNetwork::~UdpNetwork() {
  for (auto& [host, ep] : endpoints_) {
    if (ep.fd >= 0) {
      driver_.remove_fd(ep.fd);
      close(ep.fd);
    }
  }
}

Status UdpNetwork::open_socket(Endpoint& ep, HostId host,
                               const std::string& ip, std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  if (inet_pton(AF_INET, ip.c_str(), &a.sin_addr) != 1) {
    return make_error(Errc::kNoRoute, "bad address: " + ip);
  }
  int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return make_error(Errc::kInternal,
                      std::string("socket: ") + std::strerror(errno));
  }
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.sndbuf_bytes,
             sizeof(cfg_.sndbuf_bytes));
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &cfg_.rcvbuf_bytes,
             sizeof(cfg_.rcvbuf_bytes));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&a), sizeof(a)) != 0) {
    const int err = errno;
    close(fd);
    return make_error(Errc::kInternal,
                      std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof(a);
  getsockname(fd, reinterpret_cast<sockaddr*>(&a), &len);
  Status st = driver_.add_fd(fd, EPOLLIN, [this, host](std::uint32_t ev) {
    if (ev & EPOLLOUT) flush(host);
    if (ev & (EPOLLIN | EPOLLERR)) on_readable(host);
  });
  if (!st.ok()) {
    close(fd);
    return st;
  }
  ep.addr = a;
  ep.fd = fd;
  ++ustats_.sockets_opened;
  return Status::ok_status();
}

Status UdpNetwork::bind_endpoint(HostId host, const std::string& ip,
                                 std::uint16_t port) {
  Endpoint& ep = endpoints_[host];
  if (ep.fd >= 0) {
    return make_error(Errc::kInternal, "host already bound");
  }
  return open_socket(ep, host, ip, port);
}

Status UdpNetwork::add_peer(HostId host, const std::string& ip,
                            std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  if (inet_pton(AF_INET, ip.c_str(), &a.sin_addr) != 1) {
    return make_error(Errc::kNoRoute, "bad address: " + ip);
  }
  Endpoint& ep = endpoints_[host];
  if (ep.fd >= 0) {
    return make_error(Errc::kInternal, "host is locally bound");
  }
  ep.addr = a;
  return Status::ok_status();
}

std::uint16_t UdpNetwork::local_port(HostId host) const {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end() || it->second.fd < 0) return 0;
  return ntohs(it->second.addr.sin_port);
}

void UdpNetwork::attach(HostId host, PacketSink sink) {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end() || it->second.fd < 0) {
    // Implicit loopback bind keeps topology builders one-call-per-host.
    if (!bind_endpoint(host, "127.0.0.1", 0).ok()) return;
    it = endpoints_.find(host);
  }
  it->second.sink = std::move(sink);
}

bool UdpNetwork::attached(HostId host) const {
  auto it = endpoints_.find(host);
  return it != endpoints_.end() && it->second.fd >= 0 &&
         static_cast<bool>(it->second.sink);
}

void UdpNetwork::detach(HostId host) {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end()) return;
  Endpoint& ep = it->second;
  // Unsent backlog dies with the socket.
  stats_.dropped += ep.backlog.size();
  if (ep.fd >= 0) {
    driver_.remove_fd(ep.fd);
    close(ep.fd);
  }
  endpoints_.erase(it);
}

bool UdpNetwork::send(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return false;
  }
  auto src = endpoints_.find(p.src);
  if (src == endpoints_.end() || src->second.fd < 0) {
    ++ustats_.no_local_socket;
    ++stats_.dropped;
    return false;
  }
  if (p.size() > traits_.max_packet_bytes) {
    ++ustats_.oversized;
    ++stats_.dropped;
    return false;
  }
  auto dst = endpoints_.find(p.dst);
  if (p.dst == kBroadcast || dst == endpoints_.end()) {
    ++ustats_.unknown_dst;
    ++stats_.dropped;
    return false;
  }
  p.seq = next_seq();
  Endpoint& ep = src->second;
  ep.backlog.push_back(Pending{dst->second.addr, udp::encode(p)});
  ++stats_.sent;
  if (ep.backlog.size() > ustats_.max_send_backlog) {
    ustats_.max_send_backlog = ep.backlog.size();
  }
  if (!ep.flush_scheduled) {
    // Zero-delay task: every send in this event batch shares one sendmmsg.
    ep.flush_scheduled = true;
    sim_.after(0, [this, host = p.src] {
      auto it = endpoints_.find(host);
      if (it == endpoints_.end()) return;  // detached before the flush ran
      it->second.flush_scheduled = false;
      flush(host);
    });
  }
  return true;
}

void UdpNetwork::flush(HostId host) {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end() || it->second.fd < 0) return;
  Endpoint& ep = it->second;
  const int batch = cfg_.batch > 0 ? cfg_.batch : 1;
  std::vector<mmsghdr> msgs(static_cast<std::size_t>(batch));
  std::vector<iovec> iovs(static_cast<std::size_t>(batch));
  while (!ep.backlog.empty()) {
    const int n =
        static_cast<int>(std::min<std::size_t>(ep.backlog.size(),
                                               static_cast<std::size_t>(batch)));
    for (int i = 0; i < n; ++i) {
      Pending& pend = ep.backlog[static_cast<std::size_t>(i)];
      iovs[static_cast<std::size_t>(i)] =
          iovec{pend.datagram.data(), pend.datagram.size()};
      msgs[static_cast<std::size_t>(i)] = mmsghdr{};
      msghdr& h = msgs[static_cast<std::size_t>(i)].msg_hdr;
      h.msg_name = &pend.to;
      h.msg_namelen = sizeof(pend.to);
      h.msg_iov = &iovs[static_cast<std::size_t>(i)];
      h.msg_iovlen = 1;
    }
    const int sent = sendmmsg(ep.fd, msgs.data(), static_cast<unsigned>(n), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ++ustats_.send_eagain;
        if (!ep.want_writable) {
          ep.want_writable = true;
          driver_.modify_fd(ep.fd, EPOLLIN | EPOLLOUT);
        }
        return;  // resume from the EPOLLOUT wakeup
      }
      // Hard error (e.g. ECONNREFUSED bounced back): drop the head datagram
      // so the queue cannot wedge, and keep going.
      ++ustats_.send_errors;
      ++stats_.dropped;
      ep.backlog.pop_front();
      continue;
    }
    ustats_.datagrams_sent += static_cast<std::uint64_t>(sent);
    if (sent > 0) ++ustats_.send_batches;
    ep.backlog.erase(ep.backlog.begin(), ep.backlog.begin() + sent);
  }
  if (ep.want_writable) {
    ep.want_writable = false;
    driver_.modify_fd(ep.fd, EPOLLIN);
  }
}

void UdpNetwork::flush_all() {
  std::vector<HostId> hosts;
  hosts.reserve(endpoints_.size());
  for (const auto& [host, ep] : endpoints_) {
    if (ep.fd >= 0 && !ep.backlog.empty()) hosts.push_back(host);
  }
  for (HostId h : hosts) flush(h);
}

void UdpNetwork::count_decode_error(udp::DecodeError e) {
  ++stats_.corrupted_dropped;
  switch (e) {
    case udp::DecodeError::kTruncated: ++ustats_.decode_truncated; break;
    case udp::DecodeError::kBadMagic: ++ustats_.decode_bad_magic; break;
    case udp::DecodeError::kBadVersion: ++ustats_.decode_bad_version; break;
    case udp::DecodeError::kBadLength: ++ustats_.decode_bad_length; break;
    case udp::DecodeError::kBadChecksum: ++ustats_.decode_bad_checksum; break;
    case udp::DecodeError::kNone: break;
  }
}

void UdpNetwork::on_readable(HostId host) {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end() || it->second.fd < 0) return;
  const int fd = it->second.fd;
  const int batch = cfg_.batch > 0 ? cfg_.batch : 1;
  std::vector<Bytes> bufs(static_cast<std::size_t>(batch),
                          Bytes(cfg_.datagram_buffer));
  std::vector<mmsghdr> msgs(static_cast<std::size_t>(batch));
  std::vector<iovec> iovs(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    auto u = static_cast<std::size_t>(i);
    iovs[u] = iovec{bufs[u].data(), bufs[u].size()};
    msgs[u] = mmsghdr{};
    msgs[u].msg_hdr.msg_iov = &iovs[u];
    msgs[u].msg_hdr.msg_iovlen = 1;
  }
  for (int round = 0; round < cfg_.max_recv_rounds; ++round) {
    const int got =
        recvmmsg(fd, msgs.data(), static_cast<unsigned>(batch), 0, nullptr);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) ++ustats_.recv_errors;
      return;
    }
    if (got == 0) return;
    ++ustats_.recv_batches;
    ustats_.datagrams_received += static_cast<std::uint64_t>(got);
    for (int i = 0; i < got; ++i) {
      auto u = static_cast<std::size_t>(i);
      BytesView dgram(bufs[u].data(), msgs[u].msg_len);
      Packet p;
      const udp::DecodeError e = udp::decode(dgram, p);
      if (e != udp::DecodeError::kNone) {
        count_decode_error(e);
        continue;
      }
      deliver(std::move(p));
    }
    // Sockets owned by other hosts of this network may have been detached
    // by a delivery above; our own fd can only have been detached too —
    // re-check before another recvmmsg round.
    it = endpoints_.find(host);
    if (it == endpoints_.end() || it->second.fd != fd) return;
    if (got < batch) return;  // drained
  }
}

void UdpNetwork::deliver(Packet p) {
  // Software impairment over real sockets: the hook's delays and
  // duplicates ride the simulator queue, which the driver runs in wall
  // time, so seeded fault plans behave exactly as on simulated media.
  if (!apply_fault_hook(p, [this](Packet q) { deliver_now(std::move(q)); })) {
    return;
  }
  deliver_now(std::move(p));
}

void UdpNetwork::deliver_now(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return;
  }
  run_taps(p);
  if (p.corrupted && traits_.hardware_checksum) {
    // A fault hook flipped payload bits after the codec CRC was computed;
    // the "hardware" discards the damaged frame like an FCS failure.
    ++stats_.corrupted_dropped;
    return;
  }
  auto it = endpoints_.find(p.dst);
  if (it == endpoints_.end() || !it->second.sink) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += p.size();
  it->second.sink(std::move(p));
}

}  // namespace dash::net
