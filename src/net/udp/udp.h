// Socket-backed network object: real UDP beneath the unchanged stack
// (DESIGN.md §16).
//
// The paper's networks are interchangeable abstract entities (§3.1);
// every fabric so far moves packets inside the simulator. UdpNetwork is
// the same `net::Network` interface bound to actual nonblocking UDP
// sockets on an rt::Driver event loop, so the exact ST / network-RMS /
// path-manager / cc code — timers and all — runs over a real kernel
// network path. Each locally bound host owns one socket; a HostId ↔
// sockaddr map plays the role of ARP. Datagrams carry the versioned
// wire codec of net/udp/wire.h; the codec CRC acts as the "hardware"
// checksum of udp_traits(), so damaged or malformed datagrams are
// counted into corrupted_dropped and never reach a sink.
//
// Batching: send() never issues a syscall — it encodes onto the source
// socket's backlog and schedules a zero-delay flush task, so every send
// in one event batch coalesces into one sendmmsg. EAGAIN parks the
// backlog on EPOLLOUT. Receive drains with recvmmsg in bounded rounds
// per readiness wakeup. A FaultHook interposes on delivery exactly as
// on the simulated media (verdict delays/duplicates ride the simulator
// queue, which the driver runs in wall time).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "net/network.h"
#include "net/udp/wire.h"
#include "rt/driver.h"
#include "util/result.h"

namespace dash::net {

/// Traits of the UDP backend: untrusted, no physical broadcast, hardware
/// checksum (the wire-codec CRC), error-free as seen above the codec.
NetworkTraits udp_traits(std::string name = "udp");

/// Capability probe: can this environment open and bind a loopback UDP
/// socket? Tests skip cleanly when it returns false (sandboxed CI).
bool udp_available();

struct UdpConfig {
  int batch = 32;                       ///< datagrams per sendmmsg/recvmmsg
  std::size_t datagram_buffer = 2048;   ///< receive buffer per datagram
  int sndbuf_bytes = 1 << 20;           ///< SO_SNDBUF request
  int rcvbuf_bytes = 1 << 20;           ///< SO_RCVBUF request
  int max_recv_rounds = 16;             ///< recvmmsg batches per wakeup
};

class UdpNetwork final : public Network {
 public:
  struct UdpStats {
    std::uint64_t sockets_opened = 0;
    std::uint64_t datagrams_sent = 0;      ///< left via sendmmsg
    std::uint64_t datagrams_received = 0;  ///< arrived via recvmmsg
    std::uint64_t send_batches = 0;        ///< sendmmsg calls that sent > 0
    std::uint64_t recv_batches = 0;        ///< recvmmsg calls that got > 0
    std::uint64_t send_eagain = 0;         ///< backlog parked on EPOLLOUT
    std::uint64_t send_errors = 0;         ///< non-EAGAIN sendmmsg failures
    std::uint64_t recv_errors = 0;         ///< non-EAGAIN recvmmsg failures
    std::uint64_t max_send_backlog = 0;    ///< peak queued datagrams, one fd
    std::uint64_t unknown_dst = 0;         ///< no endpoint for Packet::dst
    std::uint64_t no_local_socket = 0;     ///< send from an unbound host
    std::uint64_t oversized = 0;           ///< payload > max_packet_bytes
    // Decode failures by cause; each also counts into corrupted_dropped.
    std::uint64_t decode_truncated = 0;
    std::uint64_t decode_bad_magic = 0;
    std::uint64_t decode_bad_version = 0;
    std::uint64_t decode_bad_length = 0;
    std::uint64_t decode_bad_checksum = 0;
  };

  UdpNetwork(rt::Driver& driver, NetworkTraits traits = udp_traits(),
             UdpConfig cfg = {});
  ~UdpNetwork() override;

  /// Opens a nonblocking UDP socket for `host` bound to ip:port (port 0 =
  /// ephemeral; read back with local_port) and registers it with the
  /// driver. Must precede sends from `host`. attach() on an unbound host
  /// calls this with 127.0.0.1:0 implicitly.
  Status bind_endpoint(HostId host, const std::string& ip,
                       std::uint16_t port);

  /// Registers a remote host's address without a local socket, for
  /// cross-process runs. Local sends can target it; it cannot attach here.
  Status add_peer(HostId host, const std::string& ip, std::uint16_t port);

  /// Bound port of a local host's socket; 0 if `host` has no socket.
  std::uint16_t local_port(HostId host) const;

  void attach(HostId host, PacketSink sink) override;
  bool attached(HostId host) const override;
  void detach(HostId host) override;
  bool send(Packet p) override;

  /// Sends any backlog now (bench teardown); normally the flush task and
  /// EPOLLOUT do this.
  void flush_all();

  const UdpStats& udp_stats() const { return ustats_; }
  rt::Driver& driver() { return driver_; }

 private:
  struct Pending {
    sockaddr_in to{};
    Bytes datagram;
  };
  struct Endpoint {
    sockaddr_in addr{};
    int fd = -1;  ///< >= 0 only for locally bound hosts
    PacketSink sink;
    std::deque<Pending> backlog;
    bool flush_scheduled = false;
    bool want_writable = false;  ///< EPOLLOUT armed for backlog drain
  };

  Status open_socket(Endpoint& ep, HostId host, const std::string& ip,
                     std::uint16_t port);
  void flush(HostId host);
  void on_readable(HostId host);
  void deliver(Packet p);
  void deliver_now(Packet p);
  void count_decode_error(udp::DecodeError e);

  rt::Driver& driver_;
  UdpConfig cfg_;
  std::unordered_map<HostId, Endpoint> endpoints_;
  UdpStats ustats_;
};

}  // namespace dash::net
