// Versioned wire codec for Packet over UDP datagrams (DESIGN.md §16).
//
// One Packet per datagram. The header carries every Packet field the
// in-simulator media pass by struct, so the exact ST / network-RMS bytes
// cross a real socket unchanged; a CRC-32 over header+payload plays the
// role of the Ethernet FCS (the codec is the "hardware" checksum of
// udp_traits(), so software layers above may elide their own). Decode
// never throws: every malformed datagram maps to a DecodeError the
// receiving network counts into corrupted_dropped.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "util/bytes.h"

namespace dash::net::udp {

inline constexpr std::uint16_t kMagic = 0xDA11;
inline constexpr std::uint8_t kWireVersion = 1;

/// Flag bit: the packet was marked corrupted before encode (a fault hook
/// on the sending side); the receiver restores Packet::corrupted.
inline constexpr std::uint8_t kFlagCorrupted = 0x01;

/// Fixed header size. Layout (little-endian, offsets in bytes):
///   0  magic       u16   0xDA11
///   2  version     u8    1
///   3  flags       u8    bit0 = corrupted
///   4  src         u64
///   12 dst         u64
///   20 stream      u64
///   28 seq         u64
///   36 deadline    i64   kTimeNever = no deadline
///   44 priority    u32   (two's-complement int)
///   48 payload_len u32
///   52 checksum    u32   CRC-32 over bytes [0,52) ++ payload
/// Payload bytes follow immediately.
inline constexpr std::size_t kHeaderBytes = 56;

/// Why a datagram failed to decode. All failures are counted into the
/// receiving network's corrupted_dropped (plus a per-cause udp counter).
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncated,    ///< shorter than the fixed header
  kBadMagic,     ///< not one of our datagrams
  kBadVersion,   ///< version field != kWireVersion
  kBadLength,    ///< datagram size != header + payload_len
  kBadChecksum,  ///< CRC mismatch (bit damage in flight)
};

const char* decode_error_name(DecodeError e);

/// Serializes `p` into one datagram (header + payload).
Bytes encode(const Packet& p);

/// Parses `datagram` into `out`. Returns kNone on success; on any failure
/// `out` is unspecified and must not be delivered.
DecodeError decode(BytesView datagram, Packet& out);

}  // namespace dash::net::udp
