#include "net/udp/wire.h"

#include <array>

#include "util/checksum.h"
#include "util/serialize.h"

namespace dash::net::udp {

namespace {
constexpr std::size_t kChecksumOffset = kHeaderBytes - 4;
}  // namespace

const char* decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadMagic: return "bad_magic";
    case DecodeError::kBadVersion: return "bad_version";
    case DecodeError::kBadLength: return "bad_length";
    case DecodeError::kBadChecksum: return "bad_checksum";
  }
  return "?";
}

Bytes encode(const Packet& p) {
  Bytes out;
  out.reserve(kHeaderBytes + p.payload.size());
  Writer w(out);
  w.u16(kMagic);
  w.u8(kWireVersion);
  w.u8(p.corrupted ? kFlagCorrupted : 0);
  w.u64(p.src);
  w.u64(p.dst);
  w.u64(p.stream);
  w.u64(p.seq);
  w.i64(p.deadline);
  w.u32(static_cast<std::uint32_t>(p.priority));
  w.u32(static_cast<std::uint32_t>(p.payload.size()));
  const std::array<BytesView, 2> chain = {
      BytesView(out.data(), kChecksumOffset), p.payload.view()};
  w.u32(crc32(ViewChain(chain)));
  w.bytes(p.payload.view());
  return out;
}

DecodeError decode(BytesView datagram, Packet& out) {
  if (datagram.size() < kHeaderBytes) return DecodeError::kTruncated;
  Reader r(datagram);
  if (*r.u16() != kMagic) return DecodeError::kBadMagic;
  if (*r.u8() != kWireVersion) return DecodeError::kBadVersion;
  const std::uint8_t flags = *r.u8();
  out.src = *r.u64();
  out.dst = *r.u64();
  out.stream = *r.u64();
  out.seq = *r.u64();
  out.deadline = *r.i64();
  out.priority = static_cast<int>(*r.u32());
  const std::uint32_t payload_len = *r.u32();
  const std::uint32_t wire_crc = *r.u32();
  if (datagram.size() != kHeaderBytes + payload_len) {
    return DecodeError::kBadLength;
  }
  const std::array<BytesView, 2> chain = {
      datagram.subspan(0, kChecksumOffset), datagram.subspan(kHeaderBytes)};
  if (crc32(ViewChain(chain)) != wire_crc) return DecodeError::kBadChecksum;
  out.corrupted = (flags & kFlagCorrupted) != 0;
  out.payload = Buffer(Bytes(datagram.begin() + kHeaderBytes, datagram.end()));
  return DecodeError::kNone;
}

}  // namespace dash::net::udp
