// A duplex point-to-point link whose endpoints may live on different
// shards of a ShardedSimulator (DESIGN.md §14).
//
// Each side serializes outgoing packets at the configured bit rate on its
// own shard's engine; the only thing that crosses shards is the final
// delivery, posted through the owner's deterministic mailbox exchange at
// time depart + propagation_delay. The constructor declares the link's
// propagation delay as a cross-shard lookahead bound and allocates a
// shard-stable exchange key, so building the same topology under any
// shard count yields the same keys in the same order.
//
// Restrictions versus the single-shard networks: no wiretaps, no fault
// hooks, no bit errors, and exactly one host per side — this is the WAN
// trunk between regions, not a LAN. stats() merges the two per-side
// counters and must only be read while the simulation is quiescent.
#pragma once

#include <cstdint>
#include <deque>

#include "net/network.h"
#include "net/packet.h"
#include "net/traits.h"
#include "sim/parallel.h"

namespace dash::net {

class ShardLinkNetwork final : public Network {
 public:
  /// `a` and `b` are the shard contexts of the two endpoints; they may be
  /// the same shard (the link then degenerates to an ordinary in-engine
  /// p2p link with identical timing).
  ShardLinkNetwork(sim::ShardContext& a, sim::ShardContext& b,
                   NetworkTraits traits);

  /// Binds the single host of the side owned by `ctx`. `ctx` must be one
  /// of the two contexts the link was built with, and each side can hold
  /// only one host.
  void attach_on(sim::ShardContext& ctx, HostId host, PacketSink sink);

  /// Unsupported — use attach_on so the side (and thus the shard) is
  /// explicit. Asserts in debug builds.
  void attach(HostId host, PacketSink sink) override;
  bool attached(HostId host) const override;

  /// Unbinds the host's side. Call from that side's shard thread (or while
  /// no window runs). Queued and in-flight packets drop on arrival.
  void detach(HostId host) override;

  /// Must be called from the sending host's own shard thread (or while no
  /// window is running). Returns false on overflow or unbound peer.
  bool send(Packet p) override;

  /// Merged view of the two per-side counters; quiescent-only.
  const Stats& stats() const override;

  std::uint64_t link_key() const { return key_; }
  bool cross_shard() const { return sides_[0].ctx->shard() != sides_[1].ctx->shard(); }

 private:
  struct Side {
    sim::ShardContext* ctx = nullptr;
    HostId host = 0;
    bool bound = false;
    PacketSink sink;
    std::deque<Packet> queue;
    std::uint64_t queued_bytes = 0;
    bool busy = false;
    Stats stats;  ///< written only by this side's shard thread
  };

  int side_of_host(HostId host) const;
  void transmit(int s);
  void depart(int s, Packet p);
  void arrive(int s, Packet p);  ///< runs on side s's shard thread

  Side sides_[2];
  std::uint64_t key_ = 0;
  mutable Stats merged_;
};

}  // namespace dash::net
