#include "net/internet.h"

#include <algorithm>
#include <cassert>

namespace dash::net {

NetworkTraits internet_traits(std::string name) {
  NetworkTraits t;
  t.name = std::move(name);
  t.physical_broadcast = false;
  t.bits_per_second = 1'544'000;  // T1 trunk
  t.propagation_delay = msec(20);
  t.max_packet_bytes = 576;  // classic internet default MTU
  t.bit_error_rate = 1e-7;
  t.buffer_bytes = 32 * 1024;
  t.rms_setup_cost = msec(50);
  return t;
}

SimplexLink::Config internet_trunk_config(const NetworkTraits& traits,
                                          Discipline discipline) {
  SimplexLink::Config c;
  c.bits_per_second = traits.bits_per_second;
  c.propagation_delay = traits.propagation_delay;
  c.bit_error_rate = traits.bit_error_rate;
  c.discipline = discipline;
  c.buffer_bytes = traits.buffer_bytes;
  return c;
}

InternetNetwork::InternetNetwork(sim::Simulator& sim, NetworkTraits traits,
                                 std::uint64_t seed, Discipline discipline)
    : Network(sim, std::move(traits)), discipline_(discipline), rng_(seed) {}

InternetNetwork::RouterId InternetNetwork::add_router(Time processing_delay,
                                                      RoutingEngine::AreaId area) {
  routers_.push_back(std::make_unique<Router>());
  routers_.back()->processing_delay = processing_delay;
  const RouterId id = engine_.add_router(area);
  assert(id == routers_.size() - 1);
  return id;
}

void InternetNetwork::add_trunk(RouterId a, RouterId b, SimplexLink::Config config) {
  assert(a < routers_.size() && b < routers_.size());
  auto make = [&](RouterId to) {
    auto link = std::make_unique<SimplexLink>(sim_, config, rng_.fork());
    link->set_sink([this, to](Packet p) { forward(to, std::move(p)); });
    return link;
  };
  routers_[a]->trunks[b] = make(b);
  routers_[b]->trunks[a] = make(a);
  engine_.add_link(a, b);
}

void InternetNetwork::attach_host(HostId host, RouterId router,
                                  SimplexLink::Config config) {
  assert(router < routers_.size());
  HostPort port;
  port.router = router;
  port.access_up = std::make_unique<SimplexLink>(sim_, config, rng_.fork());
  port.access_up->set_sink([this, router](Packet p) { forward(router, std::move(p)); });
  hosts_[host] = std::move(port);

  auto down = std::make_unique<SimplexLink>(sim_, config, rng_.fork());
  down->set_sink([this](Packet p) { deliver(std::move(p)); });
  routers_[router]->access_down[host] = std::move(down);
}

void InternetNetwork::attach(HostId host, PacketSink sink) {
  auto it = hosts_.find(host);
  assert(it != hosts_.end() && "attach_host(host, router, config) must come first");
  it->second.sink = std::move(sink);
  it->second.detached = false;
}

void InternetNetwork::detach(HostId host) {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return;
  // The access links stay alive — in-flight transmissions hold closures
  // over them — but nothing is delivered (deliver_now drops on null sink)
  // and the host may no longer inject packets.
  it->second.sink = nullptr;
  it->second.detached = true;
}

bool InternetNetwork::attached(HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.sink != nullptr;
}

bool InternetNetwork::send(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return false;
  }
  auto it = hosts_.find(p.src);
  if (it == hosts_.end() || it->second.detached) {
    ++stats_.dropped;
    return false;
  }
  if (p.size() > traits_.max_packet_bytes) {
    ++stats_.dropped;
    return false;
  }
  p.seq = next_seq();
  if (!it->second.access_up->send(std::move(p))) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.sent;
  return true;
}

void InternetNetwork::forward(RouterId at, Packet p) {
  if (down_) {
    ++stats_.dropped;
    return;
  }
  run_taps(p);  // a wiretap on the gateway sees forwarded traffic
  const bool local = routers_[at]->access_down.count(p.dst) != 0;
  // Charge gateway processing before the packet joins an output queue.
  sim_.after(routers_[at]->processing_delay,
             [this, at, local, p = std::move(p)]() mutable {
               Router& router = *routers_[at];
               if (local) {
                 auto out = router.access_down.find(p.dst);
                 if (out == router.access_down.end() ||
                     !out->second->send(std::move(p))) {
                   ++stats_.dropped;
                   ++drops_.access;
                 }
                 return;
               }
               auto hit = hosts_.find(p.dst);
               if (hit == hosts_.end()) {
                 ++stats_.dropped;
                 ++drops_.no_route;
                 return;
               }
               const RouterId target = hit->second.router;
               const RouterId nh = engine_.pick(
                   at, target,
                   RoutingEngine::flow_key(p.src, p.dst, p.stream));
               if (nh == RoutingEngine::kNoRoute) {
                 ++stats_.dropped;  // partitioned
                 ++drops_.no_route;
                 return;
               }
               const HostId src = p.src;
               const std::uint64_t stream = p.stream;
               if (!router.trunks.at(nh)->send(std::move(p))) {
                 ++stats_.dropped;
                 ++drops_.trunk_full;
                 if (source_quench_) send_quench(src, stream);
               }
             });
}

void InternetNetwork::send_quench(HostId to, std::uint64_t dropped_stream) {
  auto it = hosts_.find(to);
  if (it == hosts_.end() || !it->second.sink) return;
  Packet quench;
  quench.src = kBroadcast;  // "the network" speaks
  quench.dst = to;
  quench.stream = kQuenchStream;
  Bytes body;
  for (int i = 0; i < 8; ++i) {
    body.push_back(static_cast<std::byte>(dropped_stream >> (8 * i)));
  }
  quench.payload = std::move(body);
  // Delivered after one trunk propagation, bypassing queues (ICMP is
  // small and rarely queued in this model).
  sim_.after(traits_.propagation_delay,
             [this, quench = std::move(quench)]() mutable {
               auto hit = hosts_.find(quench.dst);
               if (hit != hosts_.end() && hit->second.sink) {
                 hit->second.sink(std::move(quench));
               }
             });
}

void InternetNetwork::deliver(Packet p) {
  // Faults interpose at final host delivery: a routed packet that crossed
  // the trunks can still be lost, delayed, duplicated, or corrupted here.
  if (!apply_fault_hook(p, [this](Packet q) { deliver_now(std::move(q)); })) {
    return;
  }
  deliver_now(std::move(p));
}

void InternetNetwork::deliver_now(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return;
  }
  if (p.corrupted && traits_.hardware_checksum) {
    ++stats_.corrupted_dropped;
    return;
  }
  auto it = hosts_.find(p.dst);
  if (it == hosts_.end() || !it->second.sink) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += p.size();
  it->second.sink(std::move(p));
}

std::vector<SimplexLink*> InternetNetwork::path_links(HostId src, HostId dst,
                                                      std::uint64_t stream) {
  std::vector<SimplexLink*> links;
  auto sit = hosts_.find(src);
  auto dit = hosts_.find(dst);
  if (sit == hosts_.end() || dit == hosts_.end()) return links;

  // Walk the same flow-keyed ECMP choices forwarding will make, so a
  // reservation pins down exactly the trunks the stream traverses.
  const std::uint64_t key = RoutingEngine::flow_key(src, dst, stream);
  links.push_back(sit->second.access_up.get());
  RouterId at = sit->second.router;
  const RouterId target = dit->second.router;
  std::size_t guard = routers_.size();
  while (at != target) {
    const RouterId nh = engine_.pick(at, target, key);
    if (nh == RoutingEngine::kNoRoute || guard-- == 0) return {};  // partitioned
    links.push_back(routers_[at]->trunks.at(nh).get());
    at = nh;
  }
  links.push_back(routers_[target]->access_down.at(dst).get());
  return links;
}

bool InternetNetwork::reserve_stream(std::uint64_t stream, HostId src, HostId dst,
                                     std::uint64_t bytes) {
  auto links = path_links(src, dst, stream);
  if (links.empty()) return false;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (!links[i]->reserve(stream, bytes)) {
      for (std::size_t j = 0; j < i; ++j) links[j]->release(stream);
      return false;
    }
  }
  stream_reservations_[stream] = std::move(links);
  return true;
}

void InternetNetwork::release_stream(std::uint64_t stream) {
  auto it = stream_reservations_.find(stream);
  if (it == stream_reservations_.end()) return;
  for (SimplexLink* link : it->second) link->release(stream);
  stream_reservations_.erase(it);
}

void InternetNetwork::set_down(bool down) {
  Network::set_down(down);
  if (down) notify_down();
}

void InternetNetwork::set_trunk_down(RouterId a, RouterId b, bool down) {
  routers_.at(a)->trunks.at(b)->set_down(down);
  routers_.at(b)->trunks.at(a)->set_down(down);
  // The engine repairs the affected shortest-path subtrees around (or
  // back across) the trunk — or defers a full rebuild in reference mode.
  engine_.set_link_state(a, b, !down);
}

std::uint64_t InternetNetwork::trunk_backlog(RouterId a, RouterId b) const {
  return routers_.at(a)->trunks.at(b)->queued_bytes();
}

const SimplexLink::Stats* InternetNetwork::trunk_stats(RouterId a, RouterId b) const {
  auto it = routers_.at(a)->trunks.find(b);
  return it == routers_.at(a)->trunks.end() ? nullptr : &it->second->stats();
}

std::uint64_t InternetNetwork::gateway_drops() const {
  std::uint64_t total = 0;
  for (const auto& router : routers_) {
    for (const auto& [id, link] : router->trunks) {
      (void)id;
      total += link->stats().dropped_overflow;
    }
    for (const auto& [id, link] : router->access_down) {
      (void)id;
      total += link->stats().dropped_overflow;
    }
  }
  return total;
}

std::size_t InternetNetwork::route_hops(HostId src, HostId dst) const {
  auto* self = const_cast<InternetNetwork*>(this);
  auto links = self->path_links(src, dst);
  return links.size() >= 2 ? links.size() - 2 : 0;
}

std::unique_ptr<InternetNetwork> make_dumbbell(
    sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed,
    const std::vector<HostId>& left, const std::vector<HostId>& right,
    Discipline discipline) {
  auto net = std::make_unique<InternetNetwork>(sim, traits, seed, discipline);
  const auto gw_l = net->add_router();
  const auto gw_r = net->add_router();
  net->add_trunk(gw_l, gw_r, internet_trunk_config(net->traits(), discipline));

  SimplexLink::Config access;
  access.bits_per_second = 10'000'000;  // fast local access
  access.propagation_delay = usec(100);
  access.bit_error_rate = 0.0;
  access.discipline = discipline;
  access.buffer_bytes = net->traits().buffer_bytes;
  for (HostId h : left) net->attach_host(h, gw_l, access);
  for (HostId h : right) net->attach_host(h, gw_r, access);
  return net;
}

}  // namespace dash::net
