// A shared-segment (Ethernet-like) network.
//
// All attached hosts share one medium: transmissions are serialized, every
// interface physically sees every frame (the §3.1 "physical broadcast
// property"), and each host's interface keeps a transmit queue whose
// discipline is configurable — deadline-ordered for RMS (§4.1), FIFO or
// static-priority for the baselines. Arbitration is idealized: when the
// medium goes idle it grants the attached interface holding the most
// urgent head packet, which is the behaviour a deadline-scheduling MAC
// would approximate.
#pragma once

#include <map>
#include <memory>

#include "net/network.h"
#include "net/queue.h"
#include "util/rng.h"

namespace dash::net {

class EthernetNetwork final : public Network {
 public:
  EthernetNetwork(sim::Simulator& sim, NetworkTraits traits, std::uint64_t seed,
                  Discipline discipline = Discipline::kDeadline);

  void attach(HostId host, PacketSink sink) override;
  bool attached(HostId host) const override;
  void detach(HostId host) override;
  bool send(Packet p) override;
  void set_down(bool down) override;

  /// Queued bytes at one host's interface (tests).
  std::uint64_t interface_backlog(HostId host) const;
  std::uint64_t interface_dropped(HostId host) const;

 private:
  struct Interface {
    TxQueue queue;
    PacketSink sink;
    std::uint64_t dropped = 0;

    Interface(Discipline d, std::uint64_t cap) : queue(d, cap) {}
  };

  void arbitrate();
  void transmit(HostId from);
  void deliver(Packet p);      ///< fault-hook entry point
  void deliver_now(Packet p);  ///< post-hook delivery (BER, taps, dispatch)

  Discipline discipline_;
  Rng rng_;
  std::map<HostId, std::unique_ptr<Interface>> interfaces_;
  bool medium_busy_ = false;
};

/// Canonical traits for a 10 Mb/s laboratory Ethernet segment.
NetworkTraits ethernet_traits(std::string name = "ethernet");

}  // namespace dash::net
