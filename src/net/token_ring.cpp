#include "net/token_ring.h"

#include <cassert>

namespace dash::net {

NetworkTraits token_ring_traits(std::string name, int expected_stations,
                                TokenRingNetwork::RingConfig ring) {
  NetworkTraits t;
  t.name = std::move(name);
  t.physical_broadcast = true;  // every frame passes every station
  t.bits_per_second = 4'000'000;
  // The delay floor must cover worst-case media access: a full token
  // rotation. It is folded into the propagation figure so the generic
  // quality_limits()/negotiation path prices ring access correctly.
  const Time rotation = static_cast<Time>(expected_stations) *
                        (ring.token_holding_time + ring.token_pass_time);
  t.propagation_delay = usec(50) + rotation;
  t.max_packet_bytes = 4096;  // token rings carried larger frames
  t.bit_error_rate = 0.0;
  t.buffer_bytes = 64 * 1024;
  t.rms_setup_cost = msec(1);
  return t;
}

TokenRingNetwork::TokenRingNetwork(sim::Simulator& sim, NetworkTraits traits,
                                   std::uint64_t seed, RingConfig ring,
                                   Discipline discipline)
    : Network(sim, std::move(traits)),
      ring_(ring),
      discipline_(discipline),
      rng_(seed) {}

void TokenRingNetwork::attach(HostId host, PacketSink sink) {
  assert(index_of_.find(host) == index_of_.end());
  Station station;
  station.host = host;
  station.queue = std::make_unique<TxQueue>(discipline_, traits_.buffer_bytes);
  station.sink = std::move(sink);
  index_of_[host] = stations_.size();
  stations_.push_back(std::move(station));
}

bool TokenRingNetwork::attached(HostId host) const {
  return index_of_.find(host) != index_of_.end();
}

void TokenRingNetwork::detach(HostId host) {
  auto it = index_of_.find(host);
  if (it == index_of_.end()) return;
  // The station stays on the ring as a passive repeater: pending grant()
  // closures hold indices into stations_, and the rotation bound is a
  // physical property of the loop length. It just stops sourcing and
  // sinking frames.
  Station& station = stations_[it->second];
  station.sink = nullptr;
  while (!station.queue->empty()) {
    station.queue->pop();
    ++stats_.dropped;
  }
  index_of_.erase(it);
}

Time TokenRingNetwork::worst_case_rotation() const {
  return static_cast<Time>(stations_.size()) *
         (ring_.token_holding_time + ring_.token_pass_time);
}

Time TokenRingNetwork::access_bound() const {
  return worst_case_rotation() +
         transmission_time(traits_.max_packet_bytes, traits_.bits_per_second) +
         traits_.propagation_delay;
}

std::uint64_t TokenRingNetwork::station_backlog(HostId host) const {
  auto it = index_of_.find(host);
  return it == index_of_.end() ? 0 : stations_[it->second].queue->bytes();
}

bool TokenRingNetwork::ring_has_traffic() const {
  for (const auto& s : stations_) {
    if (!s.queue->empty()) return true;
  }
  return false;
}

bool TokenRingNetwork::send(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return false;
  }
  auto it = index_of_.find(p.src);
  if (it == index_of_.end() || p.size() > traits_.max_packet_bytes) {
    ++stats_.dropped;
    return false;
  }
  p.seq = next_seq();
  if (!stations_[it->second].queue->push(std::move(p))) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.sent;
  if (!token_moving_) {
    // Resume the parked token from where it stopped; it must still walk
    // the ring to reach the sender, paying the true access latency.
    token_moving_ = true;
    sim_.after(ring_.token_pass_time, [this] { grant(token_at_); });
  }
  return true;
}

void TokenRingNetwork::grant(std::size_t index) {
  if (down_ || stations_.empty()) {
    token_moving_ = false;
    return;
  }
  token_at_ = index;
  Station& station = stations_[index];

  // Transmit queued frames within the token-holding time. The TxQueue has
  // no peek, so pop-and-maybe-push-back; the discipline's heap restores
  // the frame's position.
  Time used = 0;
  while (!station.queue->empty()) {
    auto p = station.queue->pop();
    if (!p) break;
    const Time frame_tx = transmission_time(p->size() + 21 /* ring framing */,
                                            traits_.bits_per_second);
    if (used > 0 && used + frame_tx > ring_.token_holding_time) {
      station.queue->push(std::move(*p));
      break;
    }
    used += frame_tx;
    sim_.after(used + ring_.ring_propagation,
               [this, pkt = std::move(*p)]() mutable { deliver(std::move(pkt)); });
    if (used >= ring_.token_holding_time) break;
  }

  // Pass the token once the visit ends.
  const std::size_t next = (index + 1) % stations_.size();
  if (next == 0) ++rotations_;
  sim_.after(used + ring_.token_pass_time, [this, next] {
    token_at_ = next;
    if (ring_has_traffic()) {
      grant(next);
    } else {
      token_moving_ = false;  // park here; send() resumes
    }
  });
}

void TokenRingNetwork::deliver(Packet p) {
  if (!apply_fault_hook(p, [this](Packet q) { deliver_now(std::move(q)); })) {
    return;
  }
  deliver_now(std::move(p));
}

void TokenRingNetwork::deliver_now(Packet p) {
  if (down_) {
    ++stats_.dropped;
    return;
  }
  const double perr = packet_error_probability(traits_.bit_error_rate, p.size());
  if (perr > 0.0 && rng_.chance(perr)) {
    p.corrupted = true;
    if (!p.payload.empty()) {
      const auto pos = static_cast<std::size_t>(rng_.below(p.payload.size()));
      p.payload.flip_bit(pos, static_cast<std::uint8_t>(1u << rng_.below(8)));
    }
  }
  run_taps(p);  // physical broadcast: every station saw the frame
  if (p.corrupted && traits_.hardware_checksum) {
    ++stats_.corrupted_dropped;
    return;
  }
  if (p.dst == kBroadcast) {
    for (auto& s : stations_) {
      if (s.host == p.src || !s.sink) continue;
      ++stats_.delivered;
      stats_.bytes_delivered += p.size();
      s.sink(p);
    }
    return;
  }
  auto it = index_of_.find(p.dst);
  if (it == index_of_.end() || !stations_[it->second].sink) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += p.size();
  stations_[it->second].sink(std::move(p));
}

void TokenRingNetwork::set_down(bool down) {
  const bool was_down = this->down();
  Network::set_down(down);
  if (down && !was_down) notify_down();
}

}  // namespace dash::net
