// Abstract network objects (paper §3.1).
//
// "DASH allows multiple network types... Networks are abstract entities."
// Concrete networks (EthernetNetwork, InternetNetwork) move packets between
// attached hosts; the network-RMS providers in src/netrms layer the RMS
// protocol on top.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/fault_hook.h"
#include "net/packet.h"
#include "net/traits.h"
#include "sim/simulator.h"

namespace dash::net {

class Network {
 public:
  struct Stats {
    std::uint64_t sent = 0;       ///< packets accepted from hosts
    std::uint64_t delivered = 0;  ///< packets handed to a destination sink
    std::uint64_t dropped = 0;    ///< overflow / down / unattached dst
    std::uint64_t corrupted_dropped = 0;  ///< hardware checksum discards
    std::uint64_t bytes_delivered = 0;
    // Scripted impairments (fault hook). Partition/link-down blocks are
    // counted separately from random loss so tests can tell them apart.
    std::uint64_t fault_dropped = 0;      ///< scripted random loss
    std::uint64_t fault_partitioned = 0;  ///< link-down / partition blocks
    std::uint64_t fault_delayed = 0;      ///< reordering delays applied
    std::uint64_t fault_duplicated = 0;   ///< extra copies injected
    std::uint64_t fault_corrupted = 0;    ///< payloads bit-flipped

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  explicit Network(sim::Simulator& sim, NetworkTraits traits)
      : sim_(sim), traits_(std::move(traits)) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const NetworkTraits& traits() const { return traits_; }
  sim::Simulator& simulator() { return sim_; }

  /// Attaches a host; packets addressed to it are passed to `sink`.
  virtual void attach(HostId host, PacketSink sink) = 0;
  virtual bool attached(HostId host) const = 0;

  /// Detaches a host without destroying the network: its sink is dropped
  /// and packets addressed to it count as `dropped` from then on. In-flight
  /// deliveries must stay safe (dropped on arrival, never a crash). Default
  /// is a no-op for media with nothing to tear down.
  virtual void detach(HostId host) { (void)host; }

  /// Injects a packet from `p.src`. Returns false if dropped immediately.
  virtual bool send(Packet p) = 0;

  /// Reserves buffer space along the src→dst path for a stream
  /// (deterministic RMS admission). Default: nothing to reserve.
  virtual bool reserve_stream(std::uint64_t stream, HostId src, HostId dst,
                              std::uint64_t bytes) {
    (void)stream, (void)src, (void)dst, (void)bytes;
    return true;
  }
  virtual void release_stream(std::uint64_t stream) { (void)stream; }

  /// Wiretap: `tap` receives a copy of every frame the medium carries.
  /// Models the eavesdropper of §2.1/§3.1 (physical broadcast property).
  void add_tap(PacketSink tap) { taps_.push_back(std::move(tap)); }

  /// Failure injection: take the whole network down/up.
  virtual void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// Invoked on transition to down (network RMS failure notification).
  void on_down(std::function<void()> cb) { down_cbs_.push_back(std::move(cb)); }

  /// Virtual so networks that keep per-side counters (ShardLinkNetwork)
  /// can merge them on read.
  virtual const Stats& stats() const { return stats_; }

  /// Shard affinity: which shard's thread owns this network's state in a
  /// sharded run (sim/parallel.h). Purely descriptive in single-shard
  /// runs; topology builders record it so cross-shard sends can be routed
  /// through the exchange instead of touching foreign state.
  void set_shard(sim::ShardId s) { shard_ = s; }
  sim::ShardId shard() const { return shard_; }

  /// Fresh sequence number for packets entering this network.
  std::uint64_t next_seq() { return ++seq_; }

  /// Interposes a scripted fault hook on this network's medium. Every
  /// packet about to be delivered is judged first; nullptr detaches. The
  /// hook must outlive the network (or be detached before destruction).
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

 protected:
  void run_taps(const Packet& p) {
    for (const auto& t : taps_) t(p);
  }

  /// Runs the fault hook on a packet entering the delivery path. Returns
  /// true if the (possibly corrupted) packet should be delivered now; if
  /// the hook consumed it — dropped, or rescheduled with extra delay — this
  /// returns false and any surviving copies re-enter via `redeliver`, which
  /// must route to the post-hook delivery path so copies are not re-judged.
  bool apply_fault_hook(Packet& p, std::function<void(Packet)> redeliver) {
    if (fault_hook_ == nullptr) return true;
    FaultVerdict v = fault_hook_->judge(p);
    if (v.corrupted) ++stats_.fault_corrupted;
    for (int i = 0; i < v.duplicates; ++i) {
      ++stats_.fault_duplicated;
      // Copies trail the original so the first arrival is the real one.
      const Time at = v.delay + static_cast<Time>(i + 1) *
                                    std::max<Time>(v.duplicate_gap, 1);
      sim_.after(at, [redeliver, copy = p]() mutable {
        redeliver(std::move(copy));
      });
    }
    if (v.drop) {
      if (v.blocked) {
        ++stats_.fault_partitioned;
      } else {
        ++stats_.fault_dropped;
      }
      return false;
    }
    if (v.delay > 0) {
      ++stats_.fault_delayed;
      sim_.after(v.delay, [redeliver = std::move(redeliver),
                           copy = std::move(p)]() mutable {
        redeliver(std::move(copy));
      });
      return false;
    }
    return true;
  }
  void notify_down() {
    for (const auto& cb : down_cbs_) cb();
  }

  sim::Simulator& sim_;
  NetworkTraits traits_;
  Stats stats_;
  bool down_ = false;
  FaultHook* fault_hook_ = nullptr;

 private:
  std::vector<PacketSink> taps_;
  std::vector<std::function<void()>> down_cbs_;
  std::uint64_t seq_ = 0;
  sim::ShardId shard_ = 0;
};

/// Records everything a wiretap sees; security tests scan the captures for
/// plaintext and replay them to test authentication.
class Eavesdropper {
 public:
  explicit Eavesdropper(Network& network) {
    network.add_tap([this](Packet p) { captured_.push_back(std::move(p)); });
  }

  const std::vector<Packet>& captured() const { return captured_; }
  std::size_t count() const { return captured_.size(); }

  /// True if any captured payload contains `needle` as a byte substring —
  /// i.e. the eavesdropper could read the data.
  bool saw_plaintext(BytesView needle) const {
    for (const auto& p : captured_) {
      if (contains(p.payload, needle)) return true;
    }
    return false;
  }

 private:
  static bool contains(BytesView haystack, BytesView needle) {
    if (needle.empty() || haystack.size() < needle.size()) return false;
    for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
      bool match = true;
      for (std::size_t j = 0; j < needle.size(); ++j) {
        if (haystack[i + j] != needle[j]) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  }

  std::vector<Packet> captured_;
};

}  // namespace dash::net
