// A simplex serialized link: the basic transmission resource.
//
// A link drains its transmit queue one packet at a time at the configured
// bit rate, delivers after the propagation delay, and injects bit errors.
// Gateways in the internet-like network reserve per-stream buffer shares
// here — the mechanism behind the paper's claim that RMS capacity protects
// gateway buffers where TCP's flow control does not (§4.4, §5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dash::net {

class SimplexLink {
 public:
  struct Config {
    std::uint64_t bits_per_second = 10'000'000;
    Time propagation_delay = usec(10);
    double bit_error_rate = 0.0;
    Discipline discipline = Discipline::kDeadline;
    /// Byte capacity of the transmit queue; 0 = unbounded.
    std::uint64_t buffer_bytes = 64 * 1024;
    /// Fixed serialization overhead per packet (preamble, framing), bytes.
    std::uint32_t framing_bytes = 24;
  };

  struct Stats {
    std::uint64_t sent = 0;             ///< packets accepted into the queue
    std::uint64_t delivered = 0;        ///< packets handed to the sink
    std::uint64_t bytes_delivered = 0;
    std::uint64_t dropped_overflow = 0; ///< queue full
    std::uint64_t dropped_down = 0;     ///< link was down
    std::uint64_t corrupted = 0;        ///< delivered with bit errors
    Time busy_time = 0;                 ///< cumulative transmission time
  };

  SimplexLink(sim::Simulator& sim, Config config, Rng rng)
      : sim_(sim),
        config_(config),
        rng_(rng),
        // admit() is the single source of truth for buffer bounds (it
        // understands per-stream reservations), so the queue is unbounded.
        queue_(config.discipline, 0) {}

  SimplexLink(const SimplexLink&) = delete;
  SimplexLink& operator=(const SimplexLink&) = delete;

  /// Where delivered packets go (the far-end interface or router).
  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Enqueues a packet for transmission. Returns false if it was dropped
  /// (link down, queue overflow, or stream over its buffer share).
  bool send(Packet p);

  /// Reserves `bytes` of this link's buffer for `stream` (deterministic
  /// RMS admission). Fails if reservations would exceed the buffer.
  bool reserve(std::uint64_t stream, std::uint64_t bytes);
  void release(std::uint64_t stream);
  std::uint64_t reserved_total() const { return reserved_total_; }

  /// Failure injection: while down, sends and deliveries are dropped.
  void set_down(bool down);
  bool down() const { return down_; }

  /// Invoked (once per transition) when the link goes down.
  void on_down(std::function<void()> cb) { down_cbs_.push_back(std::move(cb)); }

  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t queue_dropped() const { return queue_.dropped(); }
  std::uint64_t queued_bytes() const { return queue_.bytes(); }
  std::size_t queued_packets() const { return queue_.packets(); }

 private:
  void try_transmit();
  void deliver(Packet p);
  bool admit(const Packet& p);
  void note_popped(const Packet& p);

  sim::Simulator& sim_;
  Config config_;
  Rng rng_;
  TxQueue queue_;
  PacketSink sink_;
  bool busy_ = false;
  bool down_ = false;
  Stats stats_;
  std::vector<std::function<void()>> down_cbs_;

  // Per-stream buffer accounting (reservation and current occupancy).
  std::map<std::uint64_t, std::uint64_t> reservation_;
  std::map<std::uint64_t, std::uint64_t> stream_queued_;
  std::uint64_t reserved_total_ = 0;
  std::uint64_t shared_queued_ = 0;  ///< queued bytes charged to the shared pool
};

}  // namespace dash::net
