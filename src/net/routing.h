// Pluggable routing engine for the internetwork (DESIGN.md §15).
//
// InternetNetwork used to rerun a full BFS from every router — with a
// std::map parent table in the inner loop — whenever anything about the
// topology changed: O(R·(R+E)) per trunk flap. This engine owns a flat
// vector-indexed adjacency and per-destination distance fields and keeps
// them current three ways:
//
//   * kFullRecompute — the reference mode: any event invalidates every
//     table and the next query rebuilds them all with flat-array BFS.
//   * kIncremental (default) — a trunk up/down event repairs only the
//     affected subtree of each destination's shortest-path DAG: an O(1)
//     tightness check rejects most (event, destination) pairs outright,
//     and a bounded bucket-queue Dijkstra re-settles just the routers
//     whose distance actually changed.
//   * hierarchical areas (orthogonal) — per-area distance tables plus a
//     per-area reachability field replace the global O(R²) table with
//     O(Σ|area|² + R·areas) entries; inter-area paths are hierarchical
//     (enter the destination area at its globally nearest member, then
//     route intra-area), the standard locality/optimality trade.
//
// Next-hop sets are never stored: they are derived from the distance
// fields at forwarding time (neighbors one level closer to the
// destination), so ECMP consistency with the tables holds by
// construction, and table equivalence between modes is exactly distance
// equality — what table_digest() hashes. Among equal-cost next hops the
// choice is keyed by a (src, dst, stream) flow hash salted per router, so
// a flow never changes trunks absent a topology event while distinct
// flows spread across the equal-cost set.
//
// Everything is deterministic: adjacency is kept sorted by neighbor id,
// BFS/Dijkstra results are unique distance fields, and the flow hash is
// an explicit splitmix64 (not std::hash). Same event history ⇒ same
// table bytes ⇒ same forwarding decisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dash::net {

class RoutingEngine {
 public:
  using RouterId = std::uint32_t;
  using AreaId = std::uint32_t;

  static constexpr std::uint16_t kUnreachable = 0xFFFF;
  static constexpr RouterId kNoRoute = ~0u;

  enum class Mode {
    kFullRecompute,  ///< reference: rebuild every table on any event
    kIncremental,    ///< affected-subtree repair per trunk event (default)
  };

  struct Stats {
    std::uint64_t full_recomputes = 0;  ///< complete table rebuilds
    std::uint64_t repairs = 0;          ///< incremental trunk-event repairs
    std::uint64_t routers_touched = 0;  ///< per-field distance entries updated
    std::uint64_t recompute_ns = 0;     ///< wall time spent building/repairing
  };

  explicit RoutingEngine(Mode mode = Mode::kIncremental) : mode_(mode) {}

  // Topology ------------------------------------------------------------
  RouterId add_router(AreaId area = 0);
  /// Adds an undirected link (initially up). Links are unique per pair.
  void add_link(RouterId a, RouterId b);
  /// Trunk flap. In kIncremental mode with built tables this repairs the
  /// affected subtrees immediately; otherwise tables rebuild lazily.
  void set_link_state(RouterId a, RouterId b, bool up);

  /// Switches to hierarchical area tables (see header comment). Area ids
  /// come from add_router; call before the first query.
  void enable_areas(bool on);
  bool areas_enabled() const { return areas_; }

  void set_mode(Mode m);
  Mode mode() const { return mode_; }

  // Queries (tables build lazily) ---------------------------------------
  /// Hop count from `from` to `to` (kUnreachable if partitioned). In
  /// areas mode, inter-area distances are measured along the hierarchical
  /// forwarding path.
  std::uint32_t distance(RouterId from, RouterId to);

  /// Deterministic flow-keyed choice among the equal-cost next hops from
  /// `at` toward `dst` (`at` != `dst`). kNoRoute if unreachable.
  RouterId pick(RouterId at, RouterId dst, std::uint64_t flow_key);

  /// The full ECMP next-hop set, ascending neighbor id. Returns the
  /// count; fills at most `max_out` entries.
  int next_hops(RouterId at, RouterId dst, RouterId* out, int max_out);

  /// Flow key for ECMP hashing: explicit splitmix64 over the src/dst
  /// host ids and the network-RMS stream id, identical across runs.
  static std::uint64_t flow_key(std::uint64_t src_host, std::uint64_t dst_host,
                                std::uint64_t stream);

  /// Deterministic hash of every table byte; forces a build. Equal
  /// digests between modes / across runs mean identical tables.
  std::uint64_t table_digest();

  /// Number of distance entries currently stored (table footprint).
  std::size_t table_entries() const;

  std::size_t routers() const { return adj_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Edge {
    RouterId to = 0;
    bool up = true;
  };

  struct Area {
    AreaId id = 0;
    std::vector<RouterId> members;  ///< ascending router id
    /// Distances within the area over intra-area links only, local
    /// indices: intra[local_dst * members.size() + local_src].
    std::vector<std::uint16_t> intra;
    /// Distance from every router (global index) to the nearest member
    /// of this area over the full graph (multi-source BFS).
    std::vector<std::uint16_t> field;
  };

  void ensure_tables();
  void build_all();
  void repair(RouterId a, RouterId b, bool up);
  void mark_dirty() { dirty_ = true; }

  // Field machinery (implemented in routing.cpp over a neighbors view).
  template <typename Neighbors>
  void build_field(std::uint16_t* dist, std::size_t n,
                   const std::uint32_t* sources, std::size_t n_sources,
                   Neighbors&& nb);
  template <typename Neighbors>
  std::size_t repair_field_down(std::uint16_t* dist, std::uint32_t ia,
                                std::uint32_t ib, Neighbors&& nb);
  template <typename Neighbors>
  std::size_t repair_field_up(std::uint16_t* dist, std::uint32_t ia,
                              std::uint32_t ib, Neighbors&& nb);

  int tight_neighbors(RouterId at, RouterId dst, RouterId* out, int max_out);

  Mode mode_;
  bool areas_ = false;
  bool dirty_ = true;
  Stats stats_;

  std::vector<std::vector<Edge>> adj_;  ///< sorted by Edge::to
  std::vector<AreaId> area_of_;
  std::vector<std::uint32_t> local_index_;  ///< router -> index in its area
  std::vector<std::uint64_t> salt_;         ///< per-router ECMP hash salt

  /// Flat mode: dist_[d][r] = hops from r to d. Empty in areas mode.
  std::vector<std::vector<std::uint16_t>> dist_;
  /// Areas mode, indexed by dense area slot (area ids may be sparse).
  std::vector<Area> area_tables_;
  std::vector<std::uint32_t> area_slot_;  ///< AreaId -> slot in area_tables_

  // Repair scratch (sized to the router count, reused across events).
  std::vector<std::uint8_t> mark_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint32_t> worklist_;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> used_buckets_;
};

}  // namespace dash::net
