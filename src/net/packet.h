// Network-layer packets.
//
// Everything below the network-RMS providers moves these. A packet carries
// an opaque payload, the stream (network RMS) id for per-stream gateway
// accounting, and the transmission deadline the interface queues order by
// (paper §4.1, §4.3.1).
#pragma once

#include <cstdint>
#include <functional>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/time.h"

namespace dash::net {

using HostId = std::uint64_t;

/// Destination id that delivers to every attached host (physical broadcast).
inline constexpr HostId kBroadcast = ~0ull;

struct Packet {
  HostId src = 0;
  HostId dst = 0;

  /// Network RMS id this packet belongs to; 0 = no stream (raw datagram).
  std::uint64_t stream = 0;

  /// Assigned by the sending interface; monotone per network. Used for
  /// stable tie-breaking in deadline queues (the §4.3.1 ordering
  /// refinement) and by tests.
  std::uint64_t seq = 0;

  /// Transmission deadline; interface and gateway queues order by this
  /// when running the deadline discipline.
  Time deadline = kTimeNever;

  /// Static priority for the priority-queue baseline (lower = more urgent).
  int priority = 0;

  /// Ref-counted so taps, duplication faults, and the zero-copy receive
  /// path share one allocation; mutation (bit corruption) copies on write.
  Buffer payload;

  /// Set by the medium when bit errors hit the packet in flight. An
  /// interface with hardware checksumming drops corrupted packets;
  /// otherwise they are delivered and software must detect the damage.
  bool corrupted = false;

  std::size_t size() const { return payload.size(); }
};

/// Receives packets delivered to a host (or copied to an eavesdropper tap).
using PacketSink = std::function<void(Packet)>;

}  // namespace dash::net
