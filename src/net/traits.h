// Network-object parameters (paper §3.1).
//
// "Each network type to which a DASH host is connected is represented by a
// network object" whose parameters include whether all hosts are trusted,
// whether the network has the physical broadcast property, and per
// reliability/security combination the limits of its performance
// parameters (zero if unsupported).
#pragma once

#include <cstdint>
#include <string>

#include "rms/params.h"
#include "util/time.h"

namespace dash::net {

/// Static properties of a simulated network (Ethernet segment, internet).
struct NetworkTraits {
  std::string name;

  /// All hosts on the network are trusted (§3.1). When true the
  /// subtransport layer elides both encryption and MACs.
  bool trusted = false;

  /// "If an eavesdropper receives an entire message, then so does its
  /// intended recipient" (§3.1). Ethernet-like segments have it.
  bool physical_broadcast = false;

  /// The interface hardware encrypts on the wire, so the ST elides
  /// software encryption for privacy RMS (§2.5 case 2).
  bool link_encryption = false;

  /// The interface hardware checksums frames and drops damaged ones, so
  /// software layers elide checksumming (§2.1 discussion).
  bool hardware_checksum = false;

  /// Raw media speed.
  std::uint64_t bits_per_second = 10'000'000;

  /// One-way propagation delay between any two attached hosts (Ethernet)
  /// or per link (internet).
  Time propagation_delay = usec(10);

  /// Hardware frame size limit (§4.3: "there will always be a message size
  /// limit, e.g. the 1.5KB Ethernet packet size").
  std::uint32_t max_packet_bytes = 1500;

  /// Per-bit error probability of the medium.
  double bit_error_rate = 0.0;

  /// Buffering at each interface / gateway output (bytes).
  std::uint64_t buffer_bytes = 64 * 1024;

  /// Fixed per-packet cost of creating a network RMS (the network-specific
  /// setup protocol the ST caches to avoid, §4.2).
  Time rms_setup_cost = msec(1);
};

/// What the network itself can provide for a quality combination (§3.1:
/// "for each combination of security and reliability parameters, the limits
/// of the network's performance parameters ... may be zero if the
/// combination cannot be directly supported").
struct QualityLimits {
  bool supported = false;
  std::uint64_t max_bandwidth_bps = 0;  ///< after protocol overhead
  Time min_delay_a = kTimeNever;        ///< smallest achievable fixed delay
  double residual_error_rate = 1.0;     ///< best error rate at this quality
};

/// Computes the limits a network with `traits` offers for `q`:
///   * reliability is directly supported only on an error-free medium
///     (otherwise transport protocols supply it with their own ack RMS,
///     §2.5);
///   * privacy is directly supported if the network is trusted or has
///     link-level encryption;
///   * authentication is directly supported only on a trusted network.
QualityLimits quality_limits(const NetworkTraits& traits, const rms::Quality& q);

/// Expected fraction of packets of `bytes` size damaged on a medium with
/// per-bit error rate `ber`: 1 - (1-ber)^(8*bytes).
double packet_error_probability(double ber, std::size_t bytes);

}  // namespace dash::net
