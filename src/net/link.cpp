#include "net/link.h"

#include <algorithm>

#include "net/traits.h"

namespace dash::net {

bool SimplexLink::send(Packet p) {
  if (down_) {
    ++stats_.dropped_down;
    return false;
  }
  if (!admit(p)) {
    ++stats_.dropped_overflow;
    return false;
  }
  const std::size_t size = p.size();
  if (!queue_.push(std::move(p))) {
    // admit() already checked capacity; TxQueue is configured unbounded to
    // keep one source of truth, so this cannot happen.
    ++stats_.dropped_overflow;
    return false;
  }
  // Track occupancy for the stream-share accounting undone in note_popped.
  (void)size;
  ++stats_.sent;
  if (!busy_) try_transmit();
  return true;
}

bool SimplexLink::admit(const Packet& p) {
  if (config_.buffer_bytes == 0) {
    stream_queued_[p.stream] += p.size();
    return true;  // unbounded
  }
  const std::uint64_t size = p.size();
  auto res = reservation_.find(p.stream);
  std::uint64_t& queued = stream_queued_[p.stream];
  if (res != reservation_.end() && queued + size <= res->second) {
    // Within the stream's reserved share: always admitted.
    queued += size;
    return true;
  }
  // Charge the shared pool (buffer minus all reservations).
  const std::uint64_t shared_pool =
      config_.buffer_bytes > reserved_total_ ? config_.buffer_bytes - reserved_total_ : 0;
  if (shared_queued_ + size > shared_pool) return false;
  shared_queued_ += size;
  queued += size;
  return true;
}

void SimplexLink::note_popped(const Packet& p) {
  auto it = stream_queued_.find(p.stream);
  if (it == stream_queued_.end()) return;
  const std::uint64_t size = p.size();
  auto res = reservation_.find(p.stream);
  const std::uint64_t reserved = res == reservation_.end() ? 0 : res->second;
  // Bytes beyond the reservation were charged to the shared pool; release
  // from the shared pool first so the accounting mirrors admit().
  if (it->second > reserved) {
    const std::uint64_t over = std::min(size, it->second - reserved);
    shared_queued_ -= std::min(shared_queued_, over);
  }
  it->second -= std::min(it->second, size);
  if (it->second == 0) stream_queued_.erase(it);
}

bool SimplexLink::reserve(std::uint64_t stream, std::uint64_t bytes) {
  if (config_.buffer_bytes != 0 && reserved_total_ + bytes > config_.buffer_bytes) {
    return false;
  }
  release(stream);
  reservation_[stream] = bytes;
  reserved_total_ += bytes;
  return true;
}

void SimplexLink::release(std::uint64_t stream) {
  auto it = reservation_.find(stream);
  if (it == reservation_.end()) return;
  reserved_total_ -= it->second;
  reservation_.erase(it);
}

void SimplexLink::set_down(bool down) {
  const bool was_down = down_;
  down_ = down;
  if (down_ && !was_down) {
    // Flush the queue: a dead link delivers nothing.
    while (auto p = queue_.pop()) {
      note_popped(*p);
      ++stats_.dropped_down;
    }
    for (const auto& cb : down_cbs_) cb();
  }
}

void SimplexLink::try_transmit() {
  auto p = queue_.pop();
  if (!p) {
    busy_ = false;
    return;
  }
  note_popped(*p);
  busy_ = true;
  const Time tx = transmission_time(p->size() + config_.framing_bytes,
                                    config_.bits_per_second);
  stats_.busy_time += tx;
  sim_.after(tx, [this, pkt = std::move(*p)]() mutable {
    // The wire is free as soon as the last bit leaves; delivery happens
    // after propagation, possibly overlapping the next transmission.
    sim_.after(config_.propagation_delay,
               [this, pkt = std::move(pkt)]() mutable { deliver(std::move(pkt)); });
    try_transmit();
  });
}

void SimplexLink::deliver(Packet p) {
  if (down_) {
    ++stats_.dropped_down;
    return;
  }
  const double perr = packet_error_probability(config_.bit_error_rate, p.size());
  if (perr > 0.0 && rng_.chance(perr)) {
    p.corrupted = true;
    if (!p.payload.empty()) {
      // Flip a real bit so software checksums genuinely fail.
      const auto pos = static_cast<std::size_t>(rng_.below(p.payload.size()));
      p.payload.flip_bit(pos, static_cast<std::uint8_t>(1u << rng_.below(8)));
    }
    ++stats_.corrupted;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += p.size();
  if (sink_) sink_(std::move(p));
}

}  // namespace dash::net
