// The RMS client interface: streams, ports, and providers (paper §2).
//
// Basic RMS properties: (1) message boundaries are preserved, (2) messages
// are delivered in sequence, (3) clients are notified of RMS failure.
// A client at one level may be a provider at a higher level: network RMS
// providers sit at the bottom, the subtransport layer is a client of those
// and a provider of ST RMS, and so on up to user-level RMS (§3.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "rms/message.h"
#include "rms/params.h"
#include "util/result.h"

namespace dash::rms {

/// The receiver end of an RMS: "typically a passive object such as a port;
/// a message is considered delivered when it is enqueued on the port or
/// given to a process waiting at the port" (§2).
class Port {
 public:
  Port() = default;
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Registers a waiting process: subsequent deliveries invoke `handler`
  /// immediately; any queued messages are drained into it first.
  void set_handler(std::function<void(Message)> handler) {
    handler_ = std::move(handler);
    while (handler_ && !queue_.empty()) {
      Message m = std::move(queue_.front());
      queue_.pop_front();
      handler_(std::move(m));
    }
  }

  /// Provider side: delivers a message (enqueue or hand to the waiter).
  void deliver(Message msg, Time now) {
    ++delivered_;
    bytes_delivered_ += msg.size();
    last_delivery_ = now;
    if (msg.sent_at >= 0) last_delay_ = now - msg.sent_at;
    if (handler_) {
      handler_(std::move(msg));
    } else {
      queue_.push_back(std::move(msg));
    }
  }

  /// Polling receive for clients without a handler.
  std::optional<Message> poll() {
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  std::size_t queued() const { return queue_.size(); }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  Time last_delivery() const { return last_delivery_; }
  Time last_delay() const { return last_delay_; }

 private:
  std::function<void(Message)> handler_;
  std::deque<Message> queue_;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  Time last_delivery_ = -1;
  Time last_delay_ = -1;
};

/// The sending end of an RMS. Concrete subclasses are produced by
/// providers (network RMS, ST RMS, ...).
class Rms {
 public:
  virtual ~Rms() = default;
  Rms(const Rms&) = delete;
  Rms& operator=(const Rms&) = delete;

  /// The actual (negotiated) parameters of this RMS (§2.4).
  const Params& params() const { return params_; }

  /// Sends a message. The default transmission deadline is "as required by
  /// the delay bound" — the provider computes now + allocated stage delay.
  Status send(Message msg) { return send(std::move(msg), kTimeNever); }

  /// Sends with an explicit transmission deadline (§4.3.1: "a transmission
  /// deadline parameter is passed to the network RMS send routine").
  Status send(Message msg, Time transmission_deadline) {
    if (closed_) return make_error(Errc::kClosed, "send on closed RMS");
    if (failed_) return make_error(Errc::kRmsFailed, "send on failed RMS");
    if (msg.size() > params_.max_message_size) {
      return make_error(Errc::kMessageTooLarge,
                        "message of " + std::to_string(msg.size()) +
                            " bytes exceeds maximum of " +
                            std::to_string(params_.max_message_size));
    }
    ++messages_sent_;
    bytes_sent_ += msg.size();
    return do_send(std::move(msg), transmission_deadline);
  }

  /// Deletes the stream; further sends fail with kClosed.
  void close() {
    if (closed_) return;
    closed_ = true;
    do_close();
  }

  bool closed() const { return closed_; }
  bool failed() const { return failed_; }

  /// RMS basic property 3: clients are notified of an RMS failure.
  void on_failure(std::function<void(const Error&)> cb) { failure_cb_ = std::move(cb); }

  /// Congestion advice: the provider learned (e.g. from an internet
  /// gateway's source quench, §3.1) that this stream's traffic is being
  /// dropped for queue overflow. Advisory — the stream keeps working; a
  /// model-based sender should reduce its rate.
  void on_congestion(std::function<void()> cb) { congestion_cb_ = std::move(cb); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Header bytes this provider prepends to each sent message. A client
  /// that serializes payloads itself (the ST arena) reserves this much
  /// slice headroom so the provider's header is written in place instead
  /// of copying the payload into a fresh wire buffer — the skb_reserve
  /// idiom.
  virtual std::size_t send_headroom() const { return 0; }

 protected:
  explicit Rms(Params params) : params_(std::move(params)) {}

  virtual Status do_send(Message msg, Time transmission_deadline) = 0;
  virtual void do_close() {}

  /// Provider implementations call this to signal failure to the client.
  void fail(Error e) {
    if (failed_) return;
    failed_ = true;
    if (failure_cb_) failure_cb_(e);
  }

  /// Provider implementations call this to relay congestion advice.
  void signal_congestion() {
    if (congestion_cb_) congestion_cb_();
  }

  /// Replaces the negotiated parameters. Providers that transparently
  /// re-home a live RMS onto a different underlying resource (path
  /// failover) re-run §2.4 negotiation and install the new actual set
  /// here; the client-visible contract is whatever params() now reports.
  void reset_params(Params params) { params_ = std::move(params); }

 private:
  Params params_;
  bool closed_ = false;
  bool failed_ = false;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::function<void(const Error&)> failure_cb_;
  std::function<void()> congestion_cb_;
};

/// An RMS provider: "the hardware and software system supporting the
/// creation and use of RMS" (§2). The creator of this RMS acts as the
/// sender; receiver-created streams are arranged by higher layers (the ST
/// control channel, §3.2) by asking the peer to create the sending end.
class Provider {
 public:
  virtual ~Provider() = default;

  /// Creates a simplex RMS whose messages are delivered to `target`.
  /// Rejects (kAdmissionRejected / kIncompatibleParams / kNoRoute) per
  /// §2.3–2.4; never rejects best-effort requests for admission reasons.
  virtual Result<std::unique_ptr<Rms>> create(const Request& request,
                                              const Label& target) = 0;
};

/// Per-host registry mapping port labels to Port objects so providers can
/// deliver by label.
class PortRegistry {
 public:
  /// Binds `port` to `id`; overwrites any previous binding.
  void bind(PortId id, Port* port) { ports_[id] = port; }
  void unbind(PortId id) { ports_.erase(id); }

  /// Looks up a port; nullptr if unbound (message is dropped, as with an
  /// unmatched datagram).
  Port* find(PortId id) const {
    auto it = ports_.find(id);
    return it == ports_.end() ? nullptr : it->second;
  }

  /// Allocates a fresh unused port id (ephemeral ports).
  PortId allocate() { return next_ephemeral_++; }

 private:
  // Hot path: every delivered message looks its port up here.
  std::unordered_map<PortId, Port*> ports_;
  PortId next_ephemeral_ = 1'000'000;  // ids below are well-known
};

}  // namespace dash::rms
