#include "rms/params.h"

#include <cstdio>

namespace dash::rms {

const char* bound_type_name(BoundType t) {
  switch (t) {
    case BoundType::kBestEffort: return "best-effort";
    case BoundType::kStatistical: return "statistical";
    case BoundType::kDeterministic: return "deterministic";
  }
  return "?";
}

bool compatible(const Params& actual, const Params& requested) {
  // (1) reliability and security include those requested.
  if (!includes(actual.quality, requested.quality)) return false;

  // (2) capacity and maximum message size no less than requested.
  if (actual.capacity < requested.capacity) return false;
  if (actual.max_message_size < requested.max_message_size) return false;

  // (3) delay bound and error rate no greater than requested.
  if (!at_least_as_strong(actual.delay.type, requested.delay.type)) return false;
  if (actual.delay.a > requested.delay.a) return false;
  if (actual.delay.b_per_byte > requested.delay.b_per_byte) return false;
  if (actual.bit_error_rate > requested.bit_error_rate) return false;

  // Statistical bounds additionally guarantee a delivery probability.
  if (requested.delay.type == BoundType::kStatistical &&
      actual.delay.type == BoundType::kStatistical &&
      actual.statistical.delay_probability < requested.statistical.delay_probability) {
    return false;
  }
  return true;
}

bool well_formed(const Params& p) {
  if (p.max_message_size > p.capacity) return false;
  if (p.bit_error_rate < 0.0 || p.bit_error_rate > 1.0) return false;
  if (p.delay.a < 0 || p.delay.b_per_byte < 0) return false;
  if (p.delay.type == BoundType::kStatistical) {
    const auto& s = p.statistical;
    if (s.delay_probability < 0.0 || s.delay_probability > 1.0) return false;
    if (s.average_load_bps < 0.0 || s.burstiness < 1.0) return false;
  }
  return true;
}

double implied_bandwidth_bytes_per_sec(const Params& p) {
  if (p.max_message_size == 0 || p.capacity == 0) return 0.0;
  const Time d = p.delay.bound_for(p.max_message_size);
  if (d == kTimeNever || d <= 0) return 0.0;
  return static_cast<double>(p.capacity) / to_seconds(d);
}

std::string to_string(const Params& p) {
  std::string s;
  if (p.quality.reliable) s += "rel+";
  if (p.quality.authenticated) s += "auth+";
  if (p.quality.privacy) s += "priv+";
  if (!s.empty()) s.pop_back();
  if (s.empty()) s = "raw";

  char buf[160];
  std::snprintf(buf, sizeof buf, " cap=%llu msg<=%llu %s A=%s B=%lldns/B ber=%.2g",
                static_cast<unsigned long long>(p.capacity),
                static_cast<unsigned long long>(p.max_message_size),
                bound_type_name(p.delay.type), format_time(p.delay.a).c_str(),
                static_cast<long long>(p.delay.b_per_byte), p.bit_error_rate);
  s += buf;
  if (p.delay.type == BoundType::kStatistical) {
    std::snprintf(buf, sizeof buf, " load=%.0fbps burst=%.1f P=%.3f",
                  p.statistical.average_load_bps, p.statistical.burstiness,
                  p.statistical.delay_probability);
    s += buf;
  }
  return s;
}

}  // namespace dash::rms
