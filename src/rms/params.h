// RMS parameters (paper §2.1–§2.4).
//
// An RMS (real-time message stream) is a simplex channel parameterized by
// reliability/security booleans, capacity, maximum message size, a delay
// bound of the form A + B·size with a bound *type* (deterministic,
// statistical, best-effort), optional statistical workload parameters, and
// an average bit error rate. Creation requests carry a *desired* and an
// *acceptable* parameter set; the provider picks actual parameters
// compatible with the acceptable set, matching the desired set as closely
// as it can (§2.4).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"

namespace dash::rms {

using dash::Time;

/// Reliability and security parameters (§2.1). All default to false: the
/// weakest service, so a zero-initialized request asks for nothing.
struct Quality {
  /// All sent messages are delivered unless the RMS fails.
  bool reliable = false;
  /// Impersonation (incorrect source label) is impossible.
  bool authenticated = false;
  /// Eavesdropping is impossible.
  bool privacy = false;

  friend bool operator==(const Quality&, const Quality&) = default;
};

/// True iff `actual` provides every property `requested` asks for (§2.4
/// rule 1: "the actual reliability and security properties include those
/// requested").
constexpr bool includes(const Quality& actual, const Quality& requested) {
  return (actual.reliable || !requested.reliable) &&
         (actual.authenticated || !requested.authenticated) &&
         (actual.privacy || !requested.privacy);
}

/// Delay-bound types (§2.3), ordered by strength.
enum class BoundType : std::uint8_t {
  kBestEffort = 0,     ///< never rejected; deadlines only order resources
  kStatistical = 1,    ///< bound holds with probability >= delay_probability
  kDeterministic = 2,  ///< hard bound; resources reserved per RMS
};

const char* bound_type_name(BoundType t);

/// True iff bound type `actual` is at least as strong as `requested`.
/// (§4.2: a deterministic/statistical stream can ride only on a
/// deterministic/statistical stream; best-effort accepts anything.)
constexpr bool at_least_as_strong(BoundType actual, BoundType requested) {
  return static_cast<std::uint8_t>(actual) >= static_cast<std::uint8_t>(requested);
}

/// The delay bound: delay(message) <= a + b_per_byte * size (§2.2).
struct DelayBound {
  BoundType type = BoundType::kBestEffort;
  Time a = kTimeNever;        ///< fixed component (ns)
  Time b_per_byte = 0;        ///< per-byte component (ns/byte)

  /// The bound evaluated for a message of `size` bytes.
  constexpr Time bound_for(std::uint64_t size) const {
    if (a == kTimeNever) return kTimeNever;
    return a + b_per_byte * static_cast<Time>(size);
  }

  friend bool operator==(const DelayBound&, const DelayBound&) = default;
};

/// Workload description and guarantee level for statistical bounds (§2.2).
/// average_load / burstiness are supplied by the client; delay_probability
/// is guaranteed by the provider.
struct StatisticalParams {
  double average_load_bps = 0.0;   ///< mean offered load, bits/second
  double burstiness = 1.0;         ///< peak/mean ratio of the offered load
  double delay_probability = 1.0;  ///< P(delay <= bound) guaranteed

  friend bool operator==(const StatisticalParams&, const StatisticalParams&) = default;
};

/// The complete RMS parameter set (§2.1–2.3).
struct Params {
  Quality quality;

  /// Upper bound on bytes outstanding (sent, not yet delivered). Enforced
  /// by the *clients*, not the provider (§2.2, §4.4).
  std::uint64_t capacity = 0;

  /// Upper bound on a single message; never exceeds capacity (§2.2).
  std::uint64_t max_message_size = 0;

  DelayBound delay;

  /// Meaningful when delay.type == kStatistical.
  StatisticalParams statistical;

  /// Expected fraction of messages corrupted or lost to buffer overrun,
  /// guaranteed by the provider (§2.2).
  double bit_error_rate = 1.0;

  friend bool operator==(const Params&, const Params&) = default;
};

/// §2.4 compatibility: actual vs requested. Actual must (1) include the
/// requested quality, (2) offer >= capacity and max message size, and
/// (3) have delay-bound and error-rate parameters no greater than requested
/// (with a bound type at least as strong, and at least the requested delay
/// probability for statistical bounds).
bool compatible(const Params& actual, const Params& requested);

/// Validates internal consistency (max_message_size <= capacity, error rate
/// within [0,1], delay probability within [0,1], nonnegative components).
bool well_formed(const Params& p);

/// The paper's implied bandwidth (§2.2): a client may send a message of
/// maximum size M every D·M/C seconds, yielding about C/D bytes/second,
/// where D is the delay bound of a maximum-size message. Returns
/// bytes/second; 0 if the parameters imply no finite bound.
double implied_bandwidth_bytes_per_sec(const Params& p);

/// A request: the provider returns actual parameters compatible with
/// `acceptable`, matching `desired` as closely as possible (§2.4).
struct Request {
  Params desired;
  Params acceptable;
};

/// A request whose desired and acceptable sets are identical.
inline Request exact_request(const Params& p) { return Request{p, p}; }

/// Debug rendering ("rel+auth cap=4096 msg<=1024 det A=2ms B=1ns/B ber=1e-9").
std::string to_string(const Params& p);

}  // namespace dash::rms
