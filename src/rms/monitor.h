// Delay-bound monitoring (paper §2.3).
//
// "Failure to observe the delay bounds is not necessarily reported to the
// clients" — so clients that care attach a monitor. DelayMonitor wraps a
// Port's handler, measures each delivery against the stream's negotiated
// bound, and accumulates the statistics statistical guarantees are stated
// in (miss fraction vs the promised delay probability).
#pragma once

#include <functional>
#include <utility>

#include "rms/params.h"
#include "rms/rms.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace dash::rms {

class DelayMonitor {
 public:
  /// Monitors deliveries to `port` against `params`' delay bound. The
  /// caller's `next` handler (optional) receives each message afterwards.
  /// `now` supplies the clock (a simulator lambda in practice).
  DelayMonitor(Port& port, Params params, std::function<Time()> now,
               std::function<void(Message)> next = {})
      : params_(std::move(params)), now_(std::move(now)), next_(std::move(next)) {
    port.set_handler([this](Message m) { observe(std::move(m)); });
  }

  /// Messages delivered so far.
  std::size_t count() const { return delays_ns_.count(); }

  /// Fraction of deliveries that violated the bound.
  double miss_fraction() {
    if (delays_ns_.empty()) return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(delays_ns_.count());
  }

  /// True while the observed miss fraction honors the stream's guarantee:
  /// zero misses for a deterministic bound, miss fraction within
  /// 1 - delay_probability for a statistical one, always true for
  /// best-effort (§2.3).
  bool guarantee_holds() {
    switch (params_.delay.type) {
      case BoundType::kDeterministic:
        return misses_ == 0;
      case BoundType::kStatistical:
        return miss_fraction() <= 1.0 - params_.statistical.delay_probability + 1e-9;
      case BoundType::kBestEffort:
        return true;
    }
    return true;
  }

  double mean_ms() { return delays_ns_.mean() / 1e6; }
  double p99_ms() { return delays_ns_.percentile(0.99) / 1e6; }
  double max_ms() { return delays_ns_.max() / 1e6; }
  std::uint64_t misses() const { return misses_; }

  /// Arms a silence watchdog: if no delivery is observed within `window`,
  /// `on_timeout` fires (once). Each delivery pushes the deadline out by a
  /// full window — a real cancel + re-arm, so a healthy stream keeps exactly
  /// one live timer and a torn-down monitor keeps none.
  void arm_timeout(sim::Simulator& sim, Time window,
                   std::function<void()> on_timeout) {
    sim_ = &sim;
    timeout_window_ = window;
    on_timeout_ = std::move(on_timeout);
    ++timeouts_armed_;
    rearm_watchdog();
  }

  /// Disarms the watchdog; the pending timer leaves the simulator at once.
  void disarm() {
    if (sim_ != nullptr) sim_->cancel(watchdog_);
    on_timeout_ = nullptr;
    sim_ = nullptr;
  }

  std::uint64_t timeouts_fired() const { return timeouts_fired_; }
  std::uint64_t timeouts_armed() const { return timeouts_armed_; }

  ~DelayMonitor() { disarm(); }

 private:
  void observe(Message m) {
    if (m.sent_at >= 0) {
      const Time delay = now_() - m.sent_at;
      delays_ns_.add(static_cast<double>(delay));
      if (delay > params_.delay.bound_for(m.size())) ++misses_;
    }
    if (sim_ != nullptr) rearm_watchdog();
    if (next_) next_(std::move(m));
  }

  void rearm_watchdog() {
    sim_->cancel(watchdog_);
    watchdog_ = sim_->timer_after(timeout_window_, [this] {
      ++timeouts_fired_;
      sim_ = nullptr;  // one-shot: delivery must re-arm explicitly
      if (on_timeout_) on_timeout_();
    });
  }

  Params params_;
  std::function<Time()> now_;
  std::function<void(Message)> next_;
  Samples delays_ns_;
  std::uint64_t misses_ = 0;

  // Silence watchdog (optional).
  sim::Simulator* sim_ = nullptr;
  Time timeout_window_ = 0;
  std::function<void()> on_timeout_;
  sim::TimerHandle watchdog_;
  std::uint64_t timeouts_fired_ = 0;
  std::uint64_t timeouts_armed_ = 0;
};

}  // namespace dash::rms
