// Delay-bound monitoring (paper §2.3).
//
// "Failure to observe the delay bounds is not necessarily reported to the
// clients" — so clients that care attach a monitor. DelayMonitor wraps a
// Port's handler, measures each delivery against the stream's negotiated
// bound, and accumulates the statistics statistical guarantees are stated
// in (miss fraction vs the promised delay probability).
#pragma once

#include <functional>

#include "rms/params.h"
#include "rms/rms.h"
#include "util/stats.h"

namespace dash::rms {

class DelayMonitor {
 public:
  /// Monitors deliveries to `port` against `params`' delay bound. The
  /// caller's `next` handler (optional) receives each message afterwards.
  /// `now` supplies the clock (a simulator lambda in practice).
  DelayMonitor(Port& port, Params params, std::function<Time()> now,
               std::function<void(Message)> next = {})
      : params_(std::move(params)), now_(std::move(now)), next_(std::move(next)) {
    port.set_handler([this](Message m) { observe(std::move(m)); });
  }

  /// Messages delivered so far.
  std::size_t count() const { return delays_ns_.count(); }

  /// Fraction of deliveries that violated the bound.
  double miss_fraction() {
    if (delays_ns_.empty()) return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(delays_ns_.count());
  }

  /// True while the observed miss fraction honors the stream's guarantee:
  /// zero misses for a deterministic bound, miss fraction within
  /// 1 - delay_probability for a statistical one, always true for
  /// best-effort (§2.3).
  bool guarantee_holds() {
    switch (params_.delay.type) {
      case BoundType::kDeterministic:
        return misses_ == 0;
      case BoundType::kStatistical:
        return miss_fraction() <= 1.0 - params_.statistical.delay_probability + 1e-9;
      case BoundType::kBestEffort:
        return true;
    }
    return true;
  }

  double mean_ms() { return delays_ns_.mean() / 1e6; }
  double p99_ms() { return delays_ns_.percentile(0.99) / 1e6; }
  double max_ms() { return delays_ns_.max() / 1e6; }
  std::uint64_t misses() const { return misses_; }

 private:
  void observe(Message m) {
    if (m.sent_at >= 0) {
      const Time delay = now_() - m.sent_at;
      delays_ns_.add(static_cast<double>(delay));
      if (delay > params_.delay.bound_for(m.size())) ++misses_;
    }
    if (next_) next_(std::move(m));
  }

  Params params_;
  std::function<Time()> now_;
  std::function<void(Message)> next_;
  Samples delays_ns_;
  std::uint64_t misses_ = 0;
};

}  // namespace dash::rms
