// Messages and addressing labels (paper §2).
//
// "Messages are untyped byte arrays. They may in addition have source and
// target labels identifying the sender and receiver."
#pragma once

#include <cstdint>
#include <string>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/time.h"

namespace dash::rms {

/// Identifies a host in the simulated distributed system.
using HostId = std::uint64_t;

/// Identifies a port within a host.
using PortId = std::uint64_t;

/// A (host, port) address. Used as source and target label of a message.
struct Label {
  HostId host = 0;
  PortId port = 0;

  friend bool operator==(const Label&, const Label&) = default;
  friend auto operator<=>(const Label&, const Label&) = default;
};

inline std::string to_string(const Label& l) {
  return std::to_string(l.host) + ":" + std::to_string(l.port);
}

/// An RMS message: an untyped byte array with source/target labels. The
/// payload is a ref-counted Buffer so layer boundaries hand it on without
/// copying; a `Bytes` assigns/converts implicitly.
struct Message {
  Buffer data;
  Label source;
  Label target;

  /// Stamped by the sending RMS at the start of the send operation; message
  /// delay is delivery time minus this (§2.2).
  Time sent_at = -1;

  std::size_t size() const { return data.size(); }
};

}  // namespace dash::rms
