// RACK-style time-based loss detection (DESIGN.md §13).
//
// A send is declared lost when a *more recently transmitted* packet has
// been acknowledged and a reordering window has passed — time and delivery
// evidence, not duplicate counting or a fixed timeout. The reordering
// window scales with the smoothed RTT so a little cross-path skew never
// triggers a spurious retransmission, while a genuine loss is recovered a
// fraction of an RTT after the next ack instead of a full RTO later.
//
// The state is deliberately tiny — the newest delivered send time — so
// both transport::StreamSender and the stripe's per-subpath ARQ can embed
// one per ack stream; the caller owns the per-sequence send times.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/time.h"

namespace dash::cc {

struct RackConfig {
  /// Reordering window = fraction × SRTT, clamped to [min, max].
  double reo_wnd_fraction = 0.5;
  Time min_reo_wnd = msec(1);
  Time max_reo_wnd = msec(100);
};

class RackState {
 public:
  explicit RackState(RackConfig cfg = {}) : cfg_(cfg) {}

  /// Records a delivery of a packet last transmitted at `sent_at`.
  /// Returns true if the rack point advanced (a newer send confirmed
  /// delivered — time to re-examine older outstanding sends).
  bool on_delivered(Time sent_at) {
    if (sent_at <= xmit_time_) return false;
    xmit_time_ = sent_at;
    return true;
  }

  Time reo_wnd(Time srtt) const {
    const auto w = static_cast<Time>(cfg_.reo_wnd_fraction *
                                     static_cast<double>(std::max<Time>(srtt, 0)));
    return std::clamp(w, cfg_.min_reo_wnd, cfg_.max_reo_wnd);
  }

  /// A send last transmitted at `last_sent` is deemed lost once the rack
  /// point has moved more than a reordering window past it.
  bool lost(Time last_sent, Time srtt) const {
    return xmit_time_ >= 0 && last_sent + reo_wnd(srtt) < xmit_time_;
  }

  /// Newest delivered transmission time; -1 before the first delivery.
  Time xmit_time() const { return xmit_time_; }

 private:
  RackConfig cfg_;
  Time xmit_time_ = -1;
};

}  // namespace dash::cc
