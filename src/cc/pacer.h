// Send pacing at the model rate (DESIGN.md §13).
//
// Instead of bursting a full window into the fabric the moment capacity
// allows (which is exactly what overruns the internet gateway's outgoing
// queue in §3.1), the pacer releases sends on a schedule derived from the
// congestion model's rate. Wake-ups use the event engine's cancellable
// TimerHandle, so an idle or destroyed sender leaves no dangling timer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sim/simulator.h"
#include "util/time.h"

namespace dash::cc {

class Pacer {
 public:
  explicit Pacer(sim::Simulator& sim) : sim_(sim) {}
  ~Pacer() { sim_.cancel(timer_); }
  Pacer(const Pacer&) = delete;
  Pacer& operator=(const Pacer&) = delete;

  /// Rate 0 disables pacing (every send passes immediately).
  void set_rate(double bytes_per_sec) { rate_Bps_ = bytes_per_sec; }
  double rate() const { return rate_Bps_; }

  /// Bytes a sender may burst back-to-back before pacing engages; the
  /// schedule catches up at most this much after an idle period.
  void set_burst(std::size_t bytes) { burst_bytes_ = bytes; }

  bool can_send(std::size_t) const {
    return rate_Bps_ <= 0.0 || next_send_ <= sim_.now();
  }

  /// Charges `n` bytes against the schedule: the next release moves
  /// n/rate into the future, measured from the current schedule position
  /// (clamped so idle time accrues at most `burst` worth of credit).
  void note_sent(std::size_t n) {
    if (rate_Bps_ <= 0.0) return;
    const Time now = sim_.now();
    const Time floor = now - interval(burst_bytes_);
    next_send_ = std::max(next_send_, floor) + interval(n);
  }

  Time next_allowed(std::size_t) const {
    if (rate_Bps_ <= 0.0) return sim_.now();
    return std::max(next_send_, sim_.now());
  }

  /// The pacer's wake path: `cb` fires when a previously-blocked send is
  /// allowed again (armed by schedule_wake, cancellable, never stacked).
  void on_ready(std::function<void()> cb) { ready_ = std::move(cb); }

  void schedule_wake(std::size_t n) {
    if (armed_ && sim_.timer_active(timer_)) return;
    armed_ = true;
    ++wakes_;
    timer_ = sim_.timer_at(next_allowed(n), [this] {
      armed_ = false;
      if (ready_) ready_();
    });
  }

  bool wake_armed() const { return armed_ && sim_.timer_active(timer_); }
  std::uint64_t wakes() const { return wakes_; }

 private:
  Time interval(std::size_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) / rate_Bps_ * 1e9);
  }

  sim::Simulator& sim_;
  double rate_Bps_ = 0.0;
  std::size_t burst_bytes_ = 0;
  Time next_send_ = 0;
  sim::TimerHandle timer_;
  bool armed_ = false;
  std::function<void()> ready_;
  std::uint64_t wakes_ = 0;
};

}  // namespace dash::cc
