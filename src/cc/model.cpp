#include "cc/model.h"

#include <algorithm>

namespace dash::cc {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kStartup: return "startup";
    case Phase::kDrain: return "drain";
    case Phase::kProbeBw: return "probe-bw";
  }
  return "?";
}

void BandwidthModel::advance_round(std::uint64_t delivered_total) {
  ++round_;
  next_round_delivered_ = delivered_total;
  round_advanced_ = true;
  // Age the bandwidth window by round.
  while (!bw_window_.empty() &&
         bw_window_.front().round + cfg_.bw_window_rounds < round_) {
    bw_window_.pop_front();
  }
}

void BandwidthModel::check_full_bw() {
  // Only evaluate once per round, and only against non-degenerate
  // estimates: startup must not end because the very first samples are
  // equal to each other.
  const double bw = btlbw_Bps();
  if (bw >= full_bw_ * cfg_.full_bw_growth) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= cfg_.full_bw_rounds) phase_ = Phase::kDrain;
}

void BandwidthModel::on_sample(const DeliveryRateSampler::Sample& s,
                               std::uint64_t delivered_total,
                               std::uint64_t inflight_bytes, Time now) {
  now_ = now;

  if (s.rtt >= 0) min_rtt_.update(now, s.rtt);

  // Round accounting: this ack closes a round if the acked packet was sent
  // after the previous round's delivered level was reached.
  round_advanced_ = false;
  if (s.delivered_at_send >= next_round_delivered_) advance_round(delivered_total);

  // The windowed-max filter ignores app-limited samples below the current
  // estimate: an idle application is not evidence the path got slower.
  if (!s.app_limited || s.bw_Bps > btlbw_Bps()) {
    if (s.bw_Bps > 0.0) {
      while (!bw_window_.empty() && bw_window_.back().bw_Bps <= s.bw_Bps) {
        bw_window_.pop_back();
      }
      bw_window_.push_back({round_, s.bw_Bps});
    }
  }

  // Quench decay: every quiet recovery interval steps the factor back.
  while (quench_factor_ < 1.0 && last_quench_ >= 0 &&
         now - last_quench_ >= cfg_.quench_recovery) {
    quench_factor_ = std::min(1.0, quench_factor_ / cfg_.quench_backoff);
    last_quench_ += cfg_.quench_recovery;
  }

  switch (phase_) {
    case Phase::kStartup:
      if (round_advanced_) check_full_bw();
      if (phase_ != Phase::kDrain) break;
      [[fallthrough]];
    case Phase::kDrain:
      // The queue built during startup has drained once no more than a
      // BDP is outstanding.
      if (inflight_bytes <= static_cast<std::uint64_t>(
                                btlbw_Bps() * to_seconds(min_rtt()))) {
        phase_ = Phase::kProbeBw;
        cycle_idx_ = 2;  // begin at a neutral gain, deterministically
        cycle_start_ = now;
      }
      break;
    case Phase::kProbeBw: {
      const Time cycle_len = std::max<Time>(min_rtt(), msec(1));
      while (now - cycle_start_ >= cycle_len) {
        cycle_idx_ = (cycle_idx_ + 1) % cfg_.probe_gains.size();
        cycle_start_ += cycle_len;
      }
      break;
    }
  }
}

void BandwidthModel::on_quench(Time now) {
  ++quenches_;
  quench_factor_ = std::max(cfg_.quench_floor, quench_factor_ * cfg_.quench_backoff);
  last_quench_ = now;
  // The gateway told us its queue is full: the current estimate is the
  // bottleneck, stop trying to outgrow it.
  if (phase_ == Phase::kStartup) {
    full_bw_ = btlbw_Bps();
    phase_ = Phase::kDrain;
  }
}

double BandwidthModel::gain() const {
  switch (phase_) {
    case Phase::kStartup: return cfg_.startup_gain;
    case Phase::kDrain: return cfg_.drain_gain;
    case Phase::kProbeBw: return cfg_.probe_gains[cycle_idx_];
  }
  return 1.0;
}

double BandwidthModel::btlbw_Bps() const {
  return bw_window_.empty() ? cfg_.initial_bw_Bps : bw_window_.front().bw_Bps;
}

Time BandwidthModel::min_rtt() const {
  const Time m = min_rtt_.valid() ? min_rtt_.get(now_) : -1;
  return m >= 0 ? m : cfg_.initial_rtt;
}

double BandwidthModel::pacing_rate_Bps() const {
  return btlbw_Bps() * gain() * quench_factor_;
}

std::uint64_t BandwidthModel::cwnd_bytes() const {
  const double phase_gain =
      phase_ == Phase::kStartup ? cfg_.startup_gain : cfg_.cwnd_gain;
  const double bdp = btlbw_Bps() * to_seconds(min_rtt());
  const auto cwnd = static_cast<std::uint64_t>(phase_gain * bdp);
  return std::max<std::uint64_t>(cwnd, cfg_.min_cwnd_bytes);
}

}  // namespace dash::cc
