// Delivery evidence for model-based congestion control (DESIGN.md §13).
//
// The paper's §4.4 separates capacity enforcement from the transfer
// protocol; the cc subsystem supplies a *model-based* enforcer whose
// inputs all come from here:
//
//   * DeliveryRateSampler — timestamps every send with a snapshot of the
//     cumulative delivered count, and turns each acknowledgement into a
//     delivered-bytes/interval bandwidth sample (the BBR delivery-rate
//     estimator shape). Retransmitted sends are marked ambiguous and
//     yield no RTT or bandwidth sample (Karn's rule).
//   * MinRttFilter — minimum round-trip time over a sliding window, the
//     propagation-delay term of the bandwidth×delay model.
//   * RttEstimator — SRTT/RTTVAR smoothing (RFC 6298 coefficients) for
//     retransmission timeouts; the caller feeds only unambiguous samples.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <map>
#include <optional>

#include "util/time.h"

namespace dash::cc {

/// Sliding-window minimum filter for round-trip times. Samples expire
/// after `window`; the running minimum is exact, not an approximation.
class MinRttFilter {
 public:
  explicit MinRttFilter(Time window = sec(10)) : window_(window) {}

  void update(Time now, Time rtt) {
    // Drop expired samples, then everything not smaller than the new one
    // (they can never be the minimum again) — the deque stays ascending.
    while (!samples_.empty() && samples_.front().at + window_ < now) {
      samples_.pop_front();
    }
    while (!samples_.empty() && samples_.back().rtt >= rtt) samples_.pop_back();
    samples_.push_back({now, rtt});
  }

  /// Current windowed minimum; -1 until the first sample.
  Time get(Time now) const {
    for (const auto& s : samples_) {
      if (s.at + window_ >= now) return s.rtt;
    }
    return -1;
  }

  bool valid() const { return !samples_.empty(); }

 private:
  struct Sample {
    Time at;
    Time rtt;
  };
  Time window_;
  std::deque<Sample> samples_;  ///< ascending rtt, ascending time
};

/// RFC 6298 smoothed RTT and variance. Feed only unambiguous samples
/// (first-transmission acks — Karn's rule); the backoff of an armed
/// retransmission timer is the caller's business.
class RttEstimator {
 public:
  void sample(Time rtt) {
    if (rtt < 0) return;
    if (!valid_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      valid_ = true;
      return;
    }
    const Time err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }

  bool valid() const { return valid_; }
  Time srtt() const { return srtt_; }
  Time rttvar() const { return rttvar_; }

  /// RFC 6298 RTO = SRTT + 4·RTTVAR, clamped to [min_rto, max_rto];
  /// `fallback` (the configured static timeout) until the first sample.
  Time rto(Time min_rto, Time max_rto, Time fallback) const {
    if (!valid_) return fallback;
    const Time raw = srtt_ + 4 * rttvar_;
    if (raw < min_rto) return min_rto;
    if (raw > max_rto) return max_rto;
    return raw;
  }

 private:
  bool valid_ = false;
  Time srtt_ = 0;
  Time rttvar_ = 0;
};

/// BBR-style delivery-rate sampler. Every send records the cumulative
/// delivered count at transmission time; an ack then measures how much was
/// delivered over the interval the packet was in flight:
///
///   bw = (delivered_now − delivered_at_send) / (now − delivered_time_at_send)
///
/// which is robust to ack aggregation and, unlike ack-counting windows,
/// never over-reports the bottleneck rate.
class DeliveryRateSampler {
 public:
  struct Sample {
    double bw_Bps = 0.0;        ///< bytes per second over the flight interval
    Time rtt = -1;              ///< -1 when ambiguous (retransmitted / late)
    bool app_limited = false;   ///< sender had no backlog: not a bw ceiling
    std::uint64_t delivered_at_send = 0;  ///< for round counting
  };

  /// Records a transmission. `app_limited` marks sends made with an empty
  /// backlog, whose delivery rate reflects the application, not the path.
  void on_sent(std::uint64_t id, std::size_t bytes, Time now, bool app_limited) {
    if (delivered_time_ < 0) delivered_time_ = now;
    sent_[id] = Sent{bytes, now, delivered_time_, delivered_, app_limited, false};
    // A peer that never acknowledges must not grow the map without bound.
    while (sent_.size() > kMaxTracked) sent_.erase(sent_.begin());
  }

  /// Karn's rule: a retransmitted id can no longer yield an unambiguous
  /// RTT (and its delivery interval now spans two transmissions).
  void on_retransmit(std::uint64_t id, Time now) {
    auto it = sent_.find(id);
    if (it == sent_.end()) return;
    it->second.ambiguous = true;
    it->second.sent_at = now;
  }

  /// Consumes the record for `id`. Always advances the delivered count;
  /// returns a bandwidth/RTT sample only for unambiguous first-transmission
  /// acks (`rtt_eligible` lets the caller mark late transport-level acks —
  /// measured over a slower reverse path — as delivery-only evidence).
  std::optional<Sample> on_ack(std::uint64_t id, Time now, bool rtt_eligible = true) {
    auto it = sent_.find(id);
    if (it == sent_.end()) return std::nullopt;
    const Sent s = it->second;
    sent_.erase(it);

    delivered_ += s.bytes;
    delivered_time_ = now;
    ++acked_;

    if (s.ambiguous || !rtt_eligible) return std::nullopt;
    Sample out;
    out.rtt = now - s.sent_at;
    out.app_limited = s.app_limited;
    out.delivered_at_send = s.delivered_snap;
    const Time interval = now - s.delivered_time_snap;
    if (interval > 0) {
      out.bw_Bps = static_cast<double>(delivered_ - s.delivered_snap) /
                   to_seconds(interval);
    }
    return out;
  }

  std::uint64_t delivered_bytes() const { return delivered_; }
  std::uint64_t acked() const { return acked_; }
  std::size_t tracked() const { return sent_.size(); }

 private:
  struct Sent {
    std::size_t bytes = 0;
    Time sent_at = -1;
    Time delivered_time_snap = -1;  ///< delivered_time_ when sent
    std::uint64_t delivered_snap = 0;  ///< delivered_ when sent
    bool app_limited = false;
    bool ambiguous = false;  ///< retransmitted since (Karn)
  };

  static constexpr std::size_t kMaxTracked = 4096;

  // Ordered so the eviction above drops the oldest id deterministically.
  std::map<std::uint64_t, Sent> sent_;
  std::uint64_t delivered_ = 0;
  std::uint64_t acked_ = 0;
  Time delivered_time_ = -1;
};

}  // namespace dash::cc
