// The model-based capacity enforcer (DESIGN.md §13).
//
// §4.4 makes capacity enforcement a pluggable policy of the stream
// protocol; this enforcer plugs the cc subsystem into that same slot. It
// composes the pieces:
//
//   DeliveryRateSampler ──samples──▶ BandwidthModel ──rate──▶ Pacer
//
// can_send admits a send only when it fits the model's congestion window
// AND the pacing schedule allows it; note_sent charges both. The stream
// additionally feeds per-sequence send/ack events so the sampler can form
// delivery-rate samples, and forwards fabric source-quench signals.
//
// Deterministic reservations are untouched by construction: the enforcer
// only ever *delays or shrinks* what the stream was already allowed to
// send — it adds no traffic, and admission control (netrms) still governs
// the fabric share.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cc/model.h"
#include "cc/pacer.h"
#include "cc/rack.h"
#include "cc/sampler.h"
#include "rms/params.h"
#include "sim/simulator.h"
#include "transport/enforcer.h"

namespace dash::cc {

struct Config {
  ModelConfig model;
  RackConfig rack;
  /// Bytes a sender may burst back-to-back before pacing engages.
  std::size_t pace_burst = 2048;
  /// When true (default) the model's initial bandwidth is seeded from the
  /// RMS contract: capacity over the §4.4 rate period A + B·capacity.
  bool seed_bw_from_params = true;
};

class ModelEnforcer final : public transport::CapacityEnforcer {
 public:
  ModelEnforcer(sim::Simulator& sim, const rms::Params& params, Config cfg = {});

  // CapacityEnforcer: window (model cwnd) + pacing schedule.
  bool can_send(std::size_t n) override {
    return inflight_ + n <= model_.cwnd_bytes() && pacer_.can_send(n);
  }
  void note_sent(std::size_t n) override {
    inflight_ += n;
    pacer_.note_sent(n);
  }
  void note_acked(std::size_t n) override {
    inflight_ -= std::min<std::uint64_t>(inflight_, n);
  }
  Time next_allowed(std::size_t n) override {
    // Window-bound: only an ack can unblock. Pace-bound: a known time.
    if (inflight_ + n > model_.cwnd_bytes()) return kTimeNever;
    return pacer_.next_allowed(n);
  }

  // Per-sequence evidence from the stream protocol.
  void on_packet_sent(std::uint64_t id, std::size_t bytes, bool app_limited) {
    sampler_.on_sent(id, bytes, sim_.now(), app_limited);
  }
  void on_packet_retransmitted(std::uint64_t id) {
    sampler_.on_retransmit(id, sim_.now());
  }
  /// Consumes the ack, updates the model, refreshes the pacing rate.
  /// Returns the unambiguous RTT sample, if any (for the stream's RTO
  /// estimator). `rtt_eligible` is false for late transport-level acks
  /// that arrive over the slow reverse path.
  std::optional<Time> on_packet_acked(std::uint64_t id, bool rtt_eligible = true);

  /// Fabric source-quench reached this stream.
  void on_quench() {
    model_.on_quench(sim_.now());
    pacer_.set_rate(model_.pacing_rate_Bps());
  }

  // Wake path for pace-blocked senders.
  void on_ready(std::function<void()> cb) { pacer_.on_ready(std::move(cb)); }
  void schedule_wake(std::size_t n) { pacer_.schedule_wake(n); }

  // Telemetry surface (cc.* collector).
  double pacing_rate_Bps() const { return model_.pacing_rate_Bps(); }
  double btlbw_Bps() const { return model_.btlbw_Bps(); }
  Time min_rtt() const { return model_.min_rtt(); }
  Phase phase() const { return model_.phase(); }
  std::uint64_t cwnd() const { return model_.cwnd_bytes(); }
  std::uint64_t inflight() const { return inflight_; }
  std::uint64_t quenches() const { return model_.quenches(); }
  std::uint64_t delivered_bytes() const { return sampler_.delivered_bytes(); }
  const BandwidthModel& model() const { return model_; }
  const RackConfig& rack_config() const { return cfg_.rack; }

 private:
  sim::Simulator& sim_;
  Config cfg_;
  DeliveryRateSampler sampler_;
  BandwidthModel model_;
  Pacer pacer_;
  std::uint64_t inflight_ = 0;
};

}  // namespace dash::cc
