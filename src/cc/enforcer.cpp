#include "cc/enforcer.h"

namespace dash::cc {
namespace {

ModelConfig seeded(ModelConfig m, const rms::Params& params, bool seed) {
  if (!seed || params.capacity == 0) return m;
  // The §4.4 pessimistic rate: capacity bytes per A + B·capacity period.
  // It is a guaranteed-safe floor, so startup begins from a rate the RMS
  // contract already promised and probes upward from there.
  const Time period =
      params.delay.a + params.delay.b_per_byte * static_cast<Time>(params.capacity);
  if (period > 0) {
    m.initial_bw_Bps = static_cast<double>(params.capacity) / to_seconds(period);
  }
  return m;
}

}  // namespace

ModelEnforcer::ModelEnforcer(sim::Simulator& sim, const rms::Params& params,
                             Config cfg)
    : sim_(sim),
      cfg_(cfg),
      model_(seeded(cfg.model, params, cfg.seed_bw_from_params)),
      pacer_(sim) {
  pacer_.set_burst(cfg_.pace_burst);
  pacer_.set_rate(model_.pacing_rate_Bps());
}

std::optional<Time> ModelEnforcer::on_packet_acked(std::uint64_t id,
                                                   bool rtt_eligible) {
  auto sample = sampler_.on_ack(id, sim_.now(), rtt_eligible);
  if (!sample) return std::nullopt;
  model_.on_sample(*sample, sampler_.delivered_bytes(), inflight_, sim_.now());
  pacer_.set_rate(model_.pacing_rate_Bps());
  return sample->rtt;
}

}  // namespace dash::cc
