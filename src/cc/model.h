// BBR-flavored bandwidth×min-RTT congestion model (DESIGN.md §13).
//
// The model keeps two path estimates — the windowed-maximum delivered
// bandwidth (btlbw) and the windowed-minimum RTT — and derives everything
// else: the pacing rate is btlbw scaled by a phase gain, the congestion
// window is a multiple of the bandwidth-delay product. Three phases:
//
//   kStartup  — gain 2.885 (doubles the sending rate every round trip)
//               until the bandwidth estimate stops growing;
//   kDrain    — inverse gain until the queue built during startup drains
//               (inflight ≤ BDP);
//   kProbeBw  — a deterministic gain cycle [1.25, 0.75, 1, …] that probes
//               for more bandwidth and then yields the queue it created.
//
// Fabric source-quench signals (§3.1's internet gateway dropping on a full
// outgoing queue) feed the model directly: each quench multiplies a decay
// factor into the pacing rate and ends startup — the gateway told us the
// bottleneck queue is full, no point probing past it.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "cc/sampler.h"
#include "util/time.h"

namespace dash::cc {

struct ModelConfig {
  /// Sliding windows for the two path estimates. Bandwidth is windowed in
  /// *rounds* (min-RTT-sized delivery epochs), RTT in wall time.
  std::size_t bw_window_rounds = 10;
  Time min_rtt_window = sec(10);

  /// Phase gains (see header comment).
  double startup_gain = 2.885;
  double drain_gain = 0.35;
  std::array<double, 8> probe_gains{{1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}};

  /// Startup ends after this many consecutive rounds in which btlbw grew
  /// by less than `full_bw_growth`.
  double full_bw_growth = 1.25;
  int full_bw_rounds = 3;

  /// Congestion window = cwnd_gain × BDP, floored so a tiny-RTT path can
  /// still keep a few messages in flight.
  double cwnd_gain = 2.0;
  std::uint64_t min_cwnd_bytes = 4096;

  /// Bandwidth estimate before the first sample (the enforcer seeds this
  /// from the RMS contract: capacity over its §4.4 rate period).
  double initial_bw_Bps = 125000.0;  // 1 Mbit/s
  /// RTT estimate before the first sample.
  Time initial_rtt = msec(5);

  /// Source quench: each signal multiplies the pacing rate by
  /// `quench_backoff` (floored at `quench_floor`); a quiet
  /// `quench_recovery` interval steps the factor back toward 1.
  double quench_backoff = 0.7;
  double quench_floor = 0.125;
  Time quench_recovery = msec(500);
};

enum class Phase : std::uint8_t { kStartup, kDrain, kProbeBw };
const char* phase_name(Phase p);

class BandwidthModel {
 public:
  explicit BandwidthModel(ModelConfig cfg = {})
      : cfg_(cfg), min_rtt_(cfg.min_rtt_window) {}

  /// Feeds one delivery-rate sample (from DeliveryRateSampler::on_ack).
  /// `delivered_total` is the sampler's cumulative delivered count and
  /// `inflight_bytes` the enforcer's current outstanding total.
  void on_sample(const DeliveryRateSampler::Sample& s,
                 std::uint64_t delivered_total, std::uint64_t inflight_bytes,
                 Time now);

  /// Fabric source-quench: cut the pacing rate and stop startup probing.
  void on_quench(Time now);

  /// Current pacing rate in bytes/second (gain and quench factor applied).
  double pacing_rate_Bps() const;
  /// Congestion window in bytes (phase gain × BDP).
  std::uint64_t cwnd_bytes() const;

  double btlbw_Bps() const;
  Time min_rtt() const;
  Phase phase() const { return phase_; }
  std::uint64_t rounds() const { return round_; }
  std::uint64_t quenches() const { return quenches_; }
  double quench_factor() const { return quench_factor_; }

 private:
  double gain() const;
  void advance_round(std::uint64_t delivered_total);
  void check_full_bw();

  ModelConfig cfg_;
  Phase phase_ = Phase::kStartup;

  // Windowed-max bandwidth filter, keyed by round: descending bw.
  struct BwSample {
    std::uint64_t round;
    double bw_Bps;
  };
  std::deque<BwSample> bw_window_;
  MinRttFilter min_rtt_;
  Time now_ = 0;  ///< last sample time (for min-RTT reads)

  std::uint64_t round_ = 0;
  std::uint64_t next_round_delivered_ = 0;
  bool round_advanced_ = false;  ///< a round boundary passed this sample

  double full_bw_ = 0.0;
  int full_bw_count_ = 0;

  std::size_t cycle_idx_ = 0;
  Time cycle_start_ = -1;

  std::uint64_t quenches_ = 0;
  double quench_factor_ = 1.0;
  Time last_quench_ = -1;
};

}  // namespace dash::cc
