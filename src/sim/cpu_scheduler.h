// Per-host CPU model with pluggable short-term scheduling policy.
//
// Paper §4.1: when a message is sent on an upper-level RMS, its total delay
// is divided among stages, and protocol-process execution order is chosen by
// the short-term scheduler using per-message deadlines. We model each host's
// CPU as a single server executing protocol-processing tasks of known
// duration; the policy chooses which queued task runs next:
//   * kEdf       — earliest deadline first (what DASH requires),
//   * kFifo      — arrival order (a conventional kernel),
//   * kPriority  — static priority, FIFO within a priority (a priority
//                  kernel, the paper's "systems that use only priorities").
// Tasks are non-preemptive, which matches 1987 kernel protocol processing
// (a process runs until it blocks).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/time.h"

namespace dash::sim {

enum class CpuPolicy : std::uint8_t { kEdf, kFifo, kPriority };

const char* cpu_policy_name(CpuPolicy p);

class CpuScheduler {
 public:
  CpuScheduler(Simulator& sim, CpuPolicy policy)
      : sim_(sim), policy_(policy) {}

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Submits a protocol-processing task: `fn` completes after `duration` of
  /// CPU time once the task is dispatched. `deadline` orders EDF; `priority`
  /// orders kPriority (lower value = more urgent).
  void submit(Time deadline, Time duration, Task fn, int priority = 0) {
    queue_.push_back(
        CpuTask{deadline, priority, next_seq_++, duration, std::move(fn), policy_});
    std::push_heap(queue_.begin(), queue_.end(), LessUrgent{});
    ++submitted_;
    if (!busy_) dispatch();
  }

  /// Total CPU time consumed so far (utilization accounting for benches).
  Time busy_time() const { return busy_time_; }
  std::uint64_t tasks_completed() const { return completed_; }
  std::uint64_t tasks_submitted() const { return submitted_; }
  std::size_t queue_length() const { return queue_.size(); }
  CpuPolicy policy() const { return policy_; }

 private:
  struct CpuTask {
    Time deadline;
    int priority;
    std::uint64_t seq;
    Time duration;
    Task fn;
    CpuPolicy policy;
  };

  struct LessUrgent {
    bool operator()(const CpuTask& a, const CpuTask& b) const {
      switch (a.policy) {
        case CpuPolicy::kEdf:
          if (a.deadline != b.deadline) return a.deadline > b.deadline;
          break;
        case CpuPolicy::kFifo:
          break;
        case CpuPolicy::kPriority:
          if (a.priority != b.priority) return a.priority > b.priority;
          break;
      }
      return a.seq > b.seq;  // stable: FIFO among equals
    }
  };

  void dispatch() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    std::pop_heap(queue_.begin(), queue_.end(), LessUrgent{});
    CpuTask t = std::move(queue_.back());
    queue_.pop_back();
    busy_time_ += t.duration;
    // The CPU is non-preemptive: exactly one task runs at a time, so it can
    // sit in running_ while the completion event carries only `this` (which
    // keeps the completion closure inside Task's inline storage).
    running_ = std::move(t.fn);
    sim_.after(t.duration, [this] {
      ++completed_;
      Task fn = std::move(running_);
      fn();
      dispatch();
    });
  }

  Simulator& sim_;
  CpuPolicy policy_;
  std::vector<CpuTask> queue_;  // heap ordered by LessUrgent
  std::uint64_t next_seq_ = 0;
  bool busy_ = false;
  Task running_;
  Time busy_time_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t submitted_ = 0;
};

}  // namespace dash::sim
