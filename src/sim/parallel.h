// Sharded parallel simulation core (DESIGN.md §14).
//
// A ShardedSimulator partitions a topology across N shards, each running
// its own single-threaded Simulator, synchronized by conservative
// lookahead. The safe horizon is the minimum one-way propagation delay of
// any cross-shard link: starting from the global minimum pending-event
// time T, every shard may execute freely through T + horizon - 1, because
// the earliest cross-shard effect any shard can produce in that window
// lands at or after T + horizon. Windows are separated by barriers at
// which the cross-shard mailboxes are drained.
//
// Determinism. Each shard's Simulator is deterministic on its own; the
// only scheduling freedom is in the exchange. Cross-shard deliveries
// travel as (time, key, seq, Task) entries through per-(src, dst) SPSC
// mailboxes — produced only by the source shard's thread during a window,
// consumed only by the coordinator at the barrier, with the window
// protocol's mutex providing the happens-before edge. At drain time every
// destination's entries are sorted by (time, key, src, seq) — key is a
// shard-stable link id, seq a per-mailbox counter that the deterministic
// producer advances — and admitted in that order, so the destination's
// execution is a pure function of the simulated workload, never of thread
// scheduling. ShardExec::kSingleShard runs the identical partition and
// exchange logic inline on the calling thread; CI gates that it is
// bit-identical to the threaded mode and that seeded workloads hash
// identically across shard counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/time.h"

namespace dash::sim {

class ShardedSimulator;

/// How the shards execute their windows. Results are bit-identical either
/// way; kSingleShard exists as the reference mode (and is forced when the
/// partition has a single shard).
enum class ShardExec : std::uint8_t {
  kSingleShard,  ///< every shard's window runs inline on the caller thread
  kThreads,      ///< one worker thread per shard
};

/// Exchange/synchronization counters, exported as "sim.shard.*" metrics
/// (telemetry::collect_sharded).
struct ShardedStats {
  std::uint64_t windows = 0;     ///< lookahead windows executed
  std::uint64_t drains = 0;      ///< barrier mailbox drains that moved entries
  std::uint64_t exchanged = 0;   ///< cross-shard entries delivered
  std::uint64_t late_entries = 0;  ///< entries behind the dst clock (bug if > 0)
};

/// A shard's identity plus its engine — what topology builders hand to
/// components instead of a raw Simulator&. Implicitly converts to
/// Simulator&, so everything built against the single-threaded engine
/// (ST, RKOM, path, cc, networks) runs unchanged inside a shard.
class ShardContext {
 public:
  Simulator& sim() { return *sim_; }
  operator Simulator&() { return *sim_; }
  ShardId shard() const { return shard_; }
  ShardedSimulator& owner() { return *owner_; }

  /// Posts a task into `dst`'s shard for execution at absolute time `at`
  /// (which must be >= the end of the current window — i.e. the sender
  /// must add at least the declared cross-link delay). `key` is the
  /// shard-stable exchange key (see ShardedSimulator::allocate_link_key).
  void post(ShardId dst, Time at, std::uint64_t key, Task fn);

  /// Default-constructed contexts are inert placeholders; only
  /// ShardedSimulator wires them up.
  ShardContext() = default;

 private:
  friend class ShardedSimulator;
  ShardedSimulator* owner_ = nullptr;
  Simulator* sim_ = nullptr;
  ShardId shard_ = 0;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardId shards,
                            EngineMode mode = EngineMode::kCalendar,
                            ShardExec exec = ShardExec::kThreads);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  ShardId shards() const { return static_cast<ShardId>(sims_.size()); }
  ShardExec exec() const { return exec_; }
  ShardContext& context(ShardId s) { return contexts_[s]; }
  Simulator& simulator(ShardId s) { return *sims_[s]; }
  const Simulator& simulator(ShardId s) const { return *sims_[s]; }

  /// Declares a cross-shard link with one-way propagation delay `d`; the
  /// safe horizon is the minimum over all declarations. Every link whose
  /// endpoints live on different shards MUST be declared (ShardLinkNetwork
  /// does this in its constructor) — an undeclared path would let a shard
  /// run past a delivery it has not seen yet.
  void declare_cross_link(Time d);

  /// The conservative lookahead horizon; kTimeNever when the shards are
  /// fully independent (no cross-shard link declared).
  Time horizon() const { return horizon_; }

  /// A fresh shard-stable exchange key. Allocation order follows topology
  /// construction order, which seeded builders keep shard-count-invariant.
  std::uint64_t allocate_link_key() { return next_link_key_++; }

  /// Enqueues a cross-shard delivery (see ShardContext::post). Safe only
  /// from `src`'s shard thread during a window, or from the coordinator
  /// thread while no window is running (setup).
  void post(ShardId src, ShardId dst, Time at, std::uint64_t key, Task fn);

  /// Runs every shard until no events remain anywhere (including events
  /// still in flight through the mailboxes). Clocks end at each shard's
  /// last executed event, like Simulator::run.
  void run();

  /// Runs events with time <= t on every shard, then advances every
  /// shard's clock to exactly t.
  void run_until(Time t);

  /// Runs for the next `d` nanoseconds of simulated time. Shard clocks
  /// stay in lockstep at window barriers, so "now" is well-defined.
  void run_for(Time d) { run_until(now() + d); }

  /// The global simulated time: the minimum of the shard clocks (they are
  /// equal at every barrier and after run_until).
  Time now() const;

  /// Live pending events across all shards (excludes undrained mail).
  std::size_t pending() const;

  const ShardedStats& stats() const { return stats_; }

  /// Sum of every shard's engine counters (events executed, tasks
  /// scheduled, ...) — the aggregate the scaling bench reports.
  EngineStats aggregate_engine_stats() const;

 private:
  struct MailEntry {
    Time time = 0;
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
    ShardId src = 0;
    Task fn;
  };
  /// One direction of the exchange. Written only by the source shard's
  /// thread during a window; swapped out only by the coordinator at a
  /// barrier. The window protocol's mutex orders the two.
  struct Mailbox {
    std::vector<MailEntry> entries;
    std::uint64_t next_seq = 0;
  };

  static bool mail_before(const MailEntry& a, const MailEntry& b);

  Time earliest_event();         ///< min next_event_time across shards
  void drain_mailboxes();        ///< deterministic barrier exchange
  void run_window(Time stop);    ///< every shard runs to `stop` (kTimeNever = drain all)
  void start_workers();
  void worker_loop(std::size_t index);

  ShardExec exec_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<ShardContext> contexts_;
  std::vector<Mailbox> mailboxes_;  ///< src * shards + dst
  std::vector<MailEntry> drain_scratch_;
  Time horizon_ = kTimeNever;
  std::uint64_t next_link_key_ = 0;
  ShardedStats stats_;

  struct Workers;                ///< threads + window protocol (parallel.cpp)
  std::unique_ptr<Workers> workers_;
};

inline void ShardContext::post(ShardId dst, Time at, std::uint64_t key, Task fn) {
  owner_->post(shard_, dst, at, key, std::move(fn));
}

}  // namespace dash::sim
