// Move-only callable with 64-byte inline storage.
//
// The event engine schedules millions of small closures — "this + a couple
// of ids + a ref-counted Buffer" is the common shape, 24–64 bytes. That is
// past std::function's 16-byte small-object buffer (every schedule paid a
// heap allocation) but comfortably inside 64. sim::Task stores such
// callables inline and, being move-only, never copies them: moving a Task
// relocates the closure between inline buffers with no allocation.
//
// Layout: a type-erased Ops vtable pointer plus an aligned 64-byte buffer.
// Callables that are too big, over-aligned, or throwing-move fall back to a
// single heap cell (the pointer lives in the buffer); `heap_allocated()`
// reports which path a task took so telemetry can count inline vs. heap
// scheduling.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dash::sim {

class Task {
 public:
  /// Inline capacity. Sized for the repo's hot closures: `this` + two
  /// 64-bit ids + a dash::Buffer (40 bytes) fits exactly.
  static constexpr std::size_t kInlineSize = 64;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(storage_, &p, sizeof(p));
      ops_ = &heap_ops<D>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the stored callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  /// True if this task's callable lives in a heap cell rather than the
  /// inline buffer (telemetry: inline vs. heap scheduling mix).
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

  /// Compile-time answer for a given callable type (used by tests).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into dst from src's storage and destroys src's copy.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool heap;
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s) {
        D* p;
        std::memcpy(&p, s, sizeof(p));
        (*p)();
      },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); },
      [](void* s) {
        D* p;
        std::memcpy(&p, s, sizeof(p));
        delete p;
      },
      /*heap=*/true,
  };

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace dash::sim
