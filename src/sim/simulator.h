// Discrete-event simulation core.
//
// The whole DASH reproduction runs on one single-threaded event loop: links,
// CPU schedulers, protocol timers, and workload generators all schedule
// callbacks here. Events at equal timestamps run in scheduling order, which
// makes every run bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace dash::sim {

using dash::Time;

/// The event loop. Create one per experiment; pass by reference to every
/// component that needs the clock or timers.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void at(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `delay` nanoseconds.
  void after(Time delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Runs the earliest pending event. Returns false if none remain.
  bool step() {
    if (queue_.empty()) return false;
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    while (!queue_.empty() && queue_.top().time <= t) step();
    if (now_ < t) now_ = t;
  }

  /// Number of pending events (for tests).
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // FIFO tie-break at equal times
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dash::sim
