// Discrete-event simulation core.
//
// The whole DASH reproduction runs on one single-threaded event loop: links,
// CPU schedulers, protocol timers, and workload generators all schedule
// callbacks here. Events at equal timestamps run in scheduling order, which
// makes every run bit-for-bit reproducible.
//
// The engine executes events in exact (time, seq) order — seq is a monotone
// schedule counter, so equal timestamps run FIFO — via one of two
// interchangeable ready structures:
//
//   * kCalendar (default): a 512-bucket timer wheel over the near future
//     (8.2 us buckets, ~4.2 ms window) with a binary-heap overflow tier for
//     everything beyond the window. Buckets collect entries unsorted and are
//     sorted once, when the wheel reaches them; because bucket index is
//     time >> shift (monotone in time) and overflow entries are strictly
//     beyond every wheel entry, draining buckets in order and each bucket in
//     (time, seq) order yields exactly the global (time, seq) order.
//     Schedule/pop are amortized O(1) for the dominant near-future workload.
//   * kHeap: the reference binary heap over the same Entry type. It exists
//     to prove determinism: tests run identical seeded workloads under both
//     modes and require identical traces.
//
// Timers (timer_at/timer_after) return a TimerHandle for O(1) cancellation.
// The timer's closure lives in a generation-checked slot; cancel() bumps the
// generation and destroys the closure immediately, leaving only a 24-byte
// tombstone in the ready structure that is skipped on contact. pending()
// counts live work only — cancelled timers leave it at cancel time.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/task.h"
#include "util/time.h"

namespace dash::sim {

using dash::Time;

/// Index of one shard of a ShardedSimulator (sim/parallel.h). Plain
/// single-engine code never touches it; it lives here so lower layers can
/// declare shard affinity without depending on the parallel core.
using ShardId = std::uint32_t;

/// Which ready structure the Simulator uses. Both execute events in
/// identical (time, seq) order; kHeap is the reference path kept for
/// determinism cross-checks.
enum class EngineMode : std::uint8_t { kCalendar, kHeap };

/// Engine-level counters, exported to telemetry (see telemetry/collect.h).
struct EngineStats {
  std::uint64_t executed = 0;         ///< events run
  std::uint64_t scheduled = 0;        ///< at/after/timer_* calls
  std::uint64_t scheduled_inline = 0; ///< tasks stored in Task's inline SBO
  std::uint64_t scheduled_heap = 0;   ///< tasks that fell back to the heap
  std::uint64_t timers_created = 0;
  std::uint64_t timers_cancelled = 0;
  std::uint64_t overflow_events = 0;  ///< entries that bypassed the wheel
  std::uint64_t peak_pending = 0;     ///< max live pending ever observed
};

/// Opaque ticket for a cancellable timer. Default-constructed handles are
/// inert; cancelling an already-fired or already-cancelled timer is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const { return slot_ != kInvalid; }

 private:
  friend class Simulator;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  TimerHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = kInvalid;
  std::uint32_t generation_ = 0;
};

/// The event loop. Create one per experiment; pass by reference to every
/// component that needs the clock or timers.
class Simulator {
 public:
  explicit Simulator(EngineMode mode = EngineMode::kCalendar) : mode_(mode) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }
  EngineMode mode() const { return mode_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void at(Time t, Task fn) {
    if (t < now_) t = now_;
    count_scheduled(fn);
    Entry e;
    e.time = t;
    e.seq = next_seq_++;
    e.fn = std::move(fn);
    admit(std::move(e));
  }

  /// Schedules `fn` after `delay` nanoseconds.
  void after(Time delay, Task fn) { at(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `t` and returns a handle that cancels
  /// it in O(1). The closure is destroyed at cancel time, not at fire time.
  TimerHandle timer_at(Time t, Task fn) {
    if (t < now_) t = now_;
    count_scheduled(fn);
    ++stats_.timers_created;
    const std::uint32_t idx = acquire_slot();
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    Entry e;
    e.time = t;
    e.seq = next_seq_++;
    e.slot = idx;
    e.generation = s.generation;
    admit(std::move(e));
    return TimerHandle(idx, s.generation);
  }

  /// Schedules a cancellable timer after `delay` nanoseconds.
  TimerHandle timer_after(Time delay, Task fn) {
    return timer_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending timer. Returns true if it was still live; false if
  /// it already fired, was already cancelled, or `h` is inert. `h` is reset
  /// either way. The cancelled timer leaves pending() immediately.
  bool cancel(TimerHandle& h) {
    if (!h.valid() || h.slot_ >= slots_.size() ||
        slots_[h.slot_].generation != h.generation_) {
      h = TimerHandle();
      return false;
    }
    release_slot(h.slot_);
    h = TimerHandle();
    --live_;
    ++stats_.timers_cancelled;
    return true;
  }

  /// True if the timer behind `h` has neither fired nor been cancelled.
  bool timer_active(const TimerHandle& h) const {
    return h.valid() && h.slot_ < slots_.size() &&
           slots_[h.slot_].generation == h.generation_;
  }

  /// Runs the earliest pending event. Returns false if none remain.
  bool step() {
    Entry* e = peek();
    if (e == nullptr) return false;
    now_ = e->time;
    Task fn;
    if (e->slot != kNoSlot) {
      fn = std::move(slots_[e->slot].fn);
      release_slot(e->slot);
    } else {
      fn = std::move(e->fn);
    }
    drop_front();
    --live_;
    ++stats_.executed;
    fn();
    return true;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    for (;;) {
      Entry* e = peek();
      if (e == nullptr || e->time > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  /// Runs events for the next `d` nanoseconds of simulated time, then
  /// advances the clock to exactly now() + d.
  void run_for(Time d) { run_until(now_ + d); }

  /// Timestamp of the earliest live pending event, or kTimeNever when the
  /// simulator is idle. May purge tombstones of cancelled timers (the
  /// answer is authoritative); the ShardedSimulator's lookahead window is
  /// computed from this.
  Time next_event_time() {
    Entry* e = peek();
    return e == nullptr ? kTimeNever : e->time;
  }

  /// Number of live pending events. Cancelled timers are excluded from the
  /// moment cancel() returns.
  std::size_t pending() const { return live_; }

  /// Physical entries in the ready structure, including tombstones of
  /// cancelled timers that have not been swept yet (tests/debugging).
  std::size_t stored() const { return stored_; }

  const EngineStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr int kBucketShift = 13;  // 8192 ns per bucket
  static constexpr int kWheelBits = 9;
  static constexpr int kBuckets = 1 << kWheelBits;  // ~4.2 ms window
  static constexpr int kWords = kBuckets / 64;

  struct Entry {
    Time time = 0;
    std::uint64_t seq = 0;
    Task fn;  // empty for timer entries: their closure lives in the slot
    std::uint32_t slot = kNoSlot;
    std::uint32_t generation = 0;
  };

  struct Slot {
    Task fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
  };

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  // std::push_heap builds a max-heap; invert to get the min-(time, seq)
  // entry on top.
  static bool entry_after(const Entry& a, const Entry& b) {
    return entry_less(b, a);
  }

  bool is_stale(const Entry& e) const {
    return e.slot != kNoSlot && slots_[e.slot].generation != e.generation;
  }

  void count_scheduled(const Task& fn) {
    ++stats_.scheduled;
    if (fn.heap_allocated()) {
      ++stats_.scheduled_heap;
    } else {
      ++stats_.scheduled_inline;
    }
    ++live_;
    ++stored_;
    if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slots_[idx].next_free;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // Destroys the slot's closure now, invalidates outstanding handles and
  // ready-structure entries (their generation no longer matches), and
  // recycles the slot.
  void release_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn = Task();
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  static Time bucket_of(Time t) { return t >> kBucketShift; }

  void set_bit(int slot) { bitmap_[slot >> 6] |= 1ull << (slot & 63); }
  void clear_bit(int slot) { bitmap_[slot >> 6] &= ~(1ull << (slot & 63)); }

  /// First nonempty bucket slot at or (circularly) after `from`, or -1.
  int scan_from(int from) const {
    for (int i = 0; i <= kWords; ++i) {
      const int w = ((from >> 6) + i) % kWords;
      std::uint64_t bits = bitmap_[w];
      if (i == 0) {
        bits &= ~0ull << (from & 63);
      } else if (i == kWords) {
        bits &= (from & 63) != 0 ? ~(~0ull << (from & 63)) : 0ull;
      }
      if (bits != 0) return w * 64 + std::countr_zero(bits);
    }
    return -1;
  }

  void admit(Entry&& e) {
    if (mode_ == EngineMode::kHeap) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), entry_after);
      return;
    }
    Time ab = bucket_of(e.time);
    // The window start can outrun the clock when peek() advanced the wheel
    // without executing yet (run_until boundary probes, empty-wheel jumps).
    // Folding such entries into the current bucket keeps exact (time, seq)
    // order: everything still pending is later than them.
    if (ab < cur_bucket_) ab = cur_bucket_;
    if (ab >= cur_bucket_ + kBuckets) {
      ++stats_.overflow_events;
      overflow_.push_back(std::move(e));
      std::push_heap(overflow_.begin(), overflow_.end(), entry_after);
      return;
    }
    const int slot = static_cast<int>(ab & (kBuckets - 1));
    auto& b = buckets_[slot];
    if (slot == cur_slot_ && cur_open_) {
      // The bucket being drained is kept sorted; splice into its live tail.
      auto it = std::upper_bound(b.begin() + static_cast<std::ptrdiff_t>(pos_),
                                 b.end(), e, entry_less);
      b.insert(it, std::move(e));
    } else {
      b.push_back(std::move(e));
    }
    set_bit(slot);
  }

  /// Moves every overflow entry that now fits the window into the wheel,
  /// dropping tombstones on the way.
  void refill_from_overflow() {
    while (!overflow_.empty() &&
           bucket_of(overflow_.front().time) < cur_bucket_ + kBuckets) {
      std::pop_heap(overflow_.begin(), overflow_.end(), entry_after);
      Entry e = std::move(overflow_.back());
      overflow_.pop_back();
      if (is_stale(e)) {
        --stored_;
        continue;
      }
      const int slot = static_cast<int>(bucket_of(e.time) & (kBuckets - 1));
      buckets_[slot].push_back(std::move(e));
      set_bit(slot);
    }
  }

  /// Next live entry in exact (time, seq) order, or nullptr. Purges every
  /// tombstone it touches, so the returned entry's time is authoritative
  /// (run_until's boundary check relies on this).
  Entry* peek() {
    if (mode_ == EngineMode::kHeap) {
      while (!heap_.empty() && is_stale(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), entry_after);
        heap_.pop_back();
        --stored_;
      }
      return heap_.empty() ? nullptr : &heap_.front();
    }
    for (;;) {
      if (cur_open_) {
        auto& b = buckets_[cur_slot_];
        while (pos_ < b.size()) {
          Entry& e = b[pos_];
          if (is_stale(e)) {
            ++pos_;
            --stored_;
            continue;
          }
          return &e;
        }
        b.clear();
        pos_ = 0;
        clear_bit(cur_slot_);
        cur_open_ = false;
      }
      const int next = scan_from(cur_slot_);
      if (next >= 0) {
        const int dist = (next - cur_slot_) & (kBuckets - 1);
        cur_bucket_ += dist;
        cur_slot_ = next;
        if (dist > 0) refill_from_overflow();
      } else {
        // Wheel empty: jump the window to the earliest overflow entry.
        while (!overflow_.empty() && is_stale(overflow_.front())) {
          std::pop_heap(overflow_.begin(), overflow_.end(), entry_after);
          overflow_.pop_back();
          --stored_;
        }
        if (overflow_.empty()) return nullptr;
        cur_bucket_ = bucket_of(overflow_.front().time);
        cur_slot_ = static_cast<int>(cur_bucket_ & (kBuckets - 1));
        refill_from_overflow();
        continue;  // the scan now finds the refilled bucket
      }
      auto& b = buckets_[cur_slot_];
      std::sort(b.begin(), b.end(), entry_less);
      pos_ = 0;
      cur_open_ = true;
    }
  }

  /// Removes the entry peek() just returned. Only valid right after a
  /// non-null peek(), before any callback runs.
  void drop_front() {
    --stored_;
    if (mode_ == EngineMode::kHeap) {
      std::pop_heap(heap_.begin(), heap_.end(), entry_after);
      heap_.pop_back();
      return;
    }
    ++pos_;
  }

  EngineMode mode_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;    // live pending events
  std::size_t stored_ = 0;  // physical entries incl. tombstones
  EngineStats stats_;

  // Timer slots.
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  // kCalendar state. Window covers absolute buckets
  // [cur_bucket_, cur_bucket_ + kBuckets); everything later overflows.
  std::array<std::vector<Entry>, kBuckets> buckets_;
  std::array<std::uint64_t, kWords> bitmap_{};
  std::vector<Entry> overflow_;
  Time cur_bucket_ = 0;    // absolute bucket index at the window start
  int cur_slot_ = 0;       // cur_bucket_ & (kBuckets - 1)
  std::size_t pos_ = 0;    // drain position within the open bucket
  bool cur_open_ = false;  // current bucket sorted and being drained

  // kHeap state.
  std::vector<Entry> heap_;
};

}  // namespace dash::sim
