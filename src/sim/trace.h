// Event trace recorder.
//
// Components append (time, category, detail) records; tests assert on
// ordering and content, and examples print traces so a reader can watch a
// message cross the stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace dash::sim {

struct TraceRecord {
  Time time;
  std::string category;
  std::string detail;
};

class Trace {
 public:
  void record(Time t, std::string category, std::string detail) {
    if (!enabled_) return;
    records_.push_back({t, std::move(category), std::move(detail)});
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records in the given category.
  std::size_t count(std::string_view category) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category) ++n;
    }
    return n;
  }

  /// Renders all records as "time category detail" lines.
  std::string to_string() const;

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace dash::sim
