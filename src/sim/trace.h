// Event trace recorder.
//
// Components append (time, category, detail) records; tests assert on
// ordering and content, and examples print traces so a reader can watch a
// message cross the stack. The buffer is bounded: set_capacity() turns it
// into a ring that overwrites the oldest records and counts what it
// dropped, so a trace can stay attached to a long simulation without
// growing without bound.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace dash::sim {

struct TraceRecord {
  Time time;
  std::string category;
  std::string detail;
};

class Trace {
 public:
  /// Unbounded by default (capacity 0). With a capacity, the trace keeps
  /// the `capacity` newest records, overwriting ring-buffer style.
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(Time t, std::string category, std::string detail) {
    if (!enabled_) return;
    if (capacity_ != 0 && records_.size() == capacity_) {
      records_[head_] = {t, std::move(category), std::move(detail)};
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return;
    }
    records_.push_back({t, std::move(category), std::move(detail)});
  }

  /// Caps the buffer at `capacity` records (0 = unbounded). Shrinking an
  /// already-full trace keeps the newest records and counts the rest as
  /// dropped.
  void set_capacity(std::size_t capacity) {
    if (capacity != 0 && records_.size() > capacity) {
      std::vector<TraceRecord> kept = chronological();
      dropped_ += kept.size() - capacity;
      kept.erase(kept.begin(), kept.end() - static_cast<std::ptrdiff_t>(capacity));
      records_ = std::move(kept);
    } else if (head_ != 0) {
      records_ = chronological();
    }
    head_ = 0;
    capacity_ = capacity;
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Records in storage order. Before the ring wraps this is chronological;
  /// after it wraps use chronological().
  const std::vector<TraceRecord>& records() const { return records_; }

  /// Records oldest-to-newest regardless of ring state.
  std::vector<TraceRecord> chronological() const {
    std::vector<TraceRecord> out;
    out.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out.push_back(records_[(head_ + i) % records_.size()]);
    }
    return out;
  }

  void clear() {
    records_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return records_.size(); }

  /// Records overwritten (or discarded by set_capacity) so far.
  std::uint64_t dropped() const { return dropped_; }

  /// Number of retained records in the given category.
  std::size_t count(std::string_view category) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category) ++n;
    }
    return n;
  }

  /// Renders all retained records, oldest first, as "time category detail"
  /// lines.
  std::string to_string() const;

 private:
  bool enabled_ = true;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< oldest record when the ring has wrapped
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace dash::sim
