#include "sim/cpu_scheduler.h"
#include "sim/trace.h"

namespace dash::sim {

const char* cpu_policy_name(CpuPolicy p) {
  switch (p) {
    case CpuPolicy::kEdf: return "edf";
    case CpuPolicy::kFifo: return "fifo";
    case CpuPolicy::kPriority: return "priority";
  }
  return "?";
}

std::string Trace::to_string() const {
  std::string out;
  for (const auto& r : chronological()) {
    out += format_time(r.time);
    out += ' ';
    out += r.category;
    out += ' ';
    out += r.detail;
    out += '\n';
  }
  return out;
}

}  // namespace dash::sim
