#include "sim/parallel.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dash::sim {

// The window protocol. The coordinator publishes (round, stop) under the
// mutex and waits for every worker to check back in; workers execute their
// shard's window outside the lock. Those two critical sections are the
// happens-before edges that make the mailboxes safe single-producer /
// single-consumer handoffs: everything shard S wrote during round R is
// visible to the coordinator's drain after round R, and everything the
// drain scheduled is visible to S in round R+1.
struct ShardedSimulator::Workers {
  std::vector<std::thread> threads;
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t round = 0;
  Time stop = 0;
  int outstanding = 0;
  bool exiting = false;
};

ShardedSimulator::ShardedSimulator(ShardId shards, EngineMode mode,
                                   ShardExec exec)
    : exec_(shards <= 1 ? ShardExec::kSingleShard : exec) {
  assert(shards >= 1);
  sims_.reserve(shards);
  contexts_.resize(shards);
  for (ShardId s = 0; s < shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>(mode));
    contexts_[s].owner_ = this;
    contexts_[s].sim_ = sims_[s].get();
    contexts_[s].shard_ = s;
  }
  mailboxes_.resize(static_cast<std::size_t>(shards) * shards);
  if (exec_ == ShardExec::kThreads) start_workers();
}

ShardedSimulator::~ShardedSimulator() {
  if (workers_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(workers_->mu);
      workers_->exiting = true;
    }
    workers_->work_cv.notify_all();
    for (auto& t : workers_->threads) t.join();
  }
}

void ShardedSimulator::start_workers() {
  workers_ = std::make_unique<Workers>();
  workers_->threads.reserve(sims_.size());
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    workers_->threads.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardedSimulator::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    Time stop;
    {
      std::unique_lock<std::mutex> lk(workers_->mu);
      workers_->work_cv.wait(
          lk, [&] { return workers_->round != seen || workers_->exiting; });
      if (workers_->exiting) return;
      seen = workers_->round;
      stop = workers_->stop;
    }
    if (stop == kTimeNever) {
      sims_[index]->run();
    } else {
      sims_[index]->run_until(stop);
    }
    {
      std::lock_guard<std::mutex> lk(workers_->mu);
      if (--workers_->outstanding == 0) workers_->done_cv.notify_one();
    }
  }
}

void ShardedSimulator::declare_cross_link(Time d) {
  if (d < 1) d = 1;
  if (d < horizon_) horizon_ = d;
}

void ShardedSimulator::post(ShardId src, ShardId dst, Time at,
                            std::uint64_t key, Task fn) {
  assert(src < shards() && dst < shards());
  if (src == dst) {
    // Same shard: no exchange needed, the engine's (time, seq) order is
    // already deterministic.
    sims_[dst]->at(at, std::move(fn));
    return;
  }
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(src) * shards() + dst];
  MailEntry e;
  e.time = at;
  e.key = key;
  e.seq = mb.next_seq++;
  e.src = src;
  e.fn = std::move(fn);
  mb.entries.push_back(std::move(e));
}

bool ShardedSimulator::mail_before(const MailEntry& a, const MailEntry& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.key != b.key) return a.key < b.key;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

void ShardedSimulator::drain_mailboxes() {
  const ShardId n = shards();
  bool moved = false;
  for (ShardId dst = 0; dst < n; ++dst) {
    drain_scratch_.clear();
    for (ShardId src = 0; src < n; ++src) {
      Mailbox& mb = mailboxes_[static_cast<std::size_t>(src) * n + dst];
      for (auto& e : mb.entries) drain_scratch_.push_back(std::move(e));
      mb.entries.clear();
    }
    if (drain_scratch_.empty()) continue;
    moved = true;
    // The fixed exchange order: admission order into the destination
    // engine determines its tie-breaking seq, so it must not depend on
    // which thread filled which mailbox first.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(), mail_before);
    stats_.exchanged += drain_scratch_.size();
    Simulator& sim = *sims_[dst];
    for (auto& e : drain_scratch_) {
      if (e.time < sim.now()) ++stats_.late_entries;
      sim.at(e.time, std::move(e.fn));
    }
  }
  if (moved) ++stats_.drains;
}

Time ShardedSimulator::earliest_event() {
  Time next = kTimeNever;
  for (auto& s : sims_) next = std::min(next, s->next_event_time());
  return next;
}

void ShardedSimulator::run_window(Time stop) {
  ++stats_.windows;
  if (exec_ == ShardExec::kSingleShard) {
    for (auto& s : sims_) {
      if (stop == kTimeNever) {
        s->run();
      } else {
        s->run_until(stop);
      }
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(workers_->mu);
    workers_->stop = stop;
    workers_->outstanding = static_cast<int>(sims_.size());
    ++workers_->round;
  }
  workers_->work_cv.notify_all();
  std::unique_lock<std::mutex> lk(workers_->mu);
  workers_->done_cv.wait(lk, [&] { return workers_->outstanding == 0; });
}

void ShardedSimulator::run() {
  for (;;) {
    drain_mailboxes();
    const Time next = earliest_event();
    if (next == kTimeNever) return;
    if (horizon_ == kTimeNever) {
      // No cross-shard links: the shards are independent; drain each to
      // completion in one window (posts without a declared link would be
      // a topology bug, surfaced by stats().late_entries).
      run_window(kTimeNever);
      continue;
    }
    const Time stop =
        next > kTimeNever - horizon_ ? kTimeNever - 1 : next + horizon_ - 1;
    run_window(stop);
  }
}

void ShardedSimulator::run_until(Time t) {
  for (;;) {
    drain_mailboxes();
    const Time next = earliest_event();
    if (next == kTimeNever || next > t) break;
    Time stop = t;
    if (horizon_ != kTimeNever) {
      const Time safe =
          next > kTimeNever - horizon_ ? kTimeNever - 1 : next + horizon_ - 1;
      stop = std::min(stop, safe);
    }
    run_window(stop);
  }
  // Advance every clock to exactly t (matches Simulator::run_until). No
  // events <= t remain anywhere, so this only moves clocks.
  for (auto& s : sims_) s->run_until(t);
}

Time ShardedSimulator::now() const {
  Time t = kTimeNever;
  for (const auto& s : sims_) t = std::min(t, s->now());
  return t == kTimeNever ? 0 : t;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->pending();
  return n;
}

EngineStats ShardedSimulator::aggregate_engine_stats() const {
  EngineStats total;
  for (const auto& s : sims_) {
    const EngineStats& e = s->stats();
    total.executed += e.executed;
    total.scheduled += e.scheduled;
    total.scheduled_inline += e.scheduled_inline;
    total.scheduled_heap += e.scheduled_heap;
    total.timers_created += e.timers_created;
    total.timers_cancelled += e.timers_cancelled;
    total.overflow_events += e.overflow_events;
    total.peak_pending += e.peak_pending;
  }
  return total;
}

}  // namespace dash::sim
