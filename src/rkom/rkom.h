// The Remote Kernel Operation Mechanism (paper §3.3).
//
// "All request/reply communication uses the DASH Remote Kernel Operation
// Mechanism (RKOM). ... The RKOM module maintains an RKOM channel to each
// active peer. Such a channel consists of four ST RMS's, one low-delay and
// one high-delay RMS in each direction. The low-delay RMS's are used for
// initial request and reply messages, and the high-delay RMS's are used
// for retransmissions and acknowledgements."
//
// We implement at-most-once semantics: the server deduplicates requests by
// (client, call id), caches replies until acknowledged, and re-sends the
// cached reply for retransmitted requests. A user-level RPC facade sits on
// top ("used as a basis for user-level request/reply communication").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "st/st.h"
#include "telemetry/metrics.h"

namespace dash::rkom {

using rms::HostId;
using rms::Label;

/// Well-known port every RKOM node binds.
inline constexpr rms::PortId kRkomPort = 3;

struct RkomConfig {
  Time retry_timeout = msec(120);
  int max_retries = 5;
  /// Delay bound targets for the two stream classes of the channel.
  Time low_delay_a = msec(10);
  Time high_delay_a = msec(500);
  /// How long an unacknowledged cached reply survives (at-most-once state).
  Time reply_cache_ttl = sec(10);
};

class RkomNode {
 public:
  /// Server-side operation: args in, result out. `service_time` of host
  /// CPU is charged before the reply is sent.
  struct Operation {
    std::function<Bytes(BytesView)> handler;
    Time service_time = 0;
  };

  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t replies_received = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t request_retransmissions = 0;
    std::uint64_t reply_retransmissions = 0;  ///< cached reply re-sent
    std::uint64_t duplicate_requests = 0;     ///< suppressed by at-most-once
    std::uint64_t executions = 0;             ///< handler actually ran
    std::uint64_t acks_sent = 0;
    std::uint64_t channels_reestablished = 0;  ///< rebuilt after stream failure
  };

  RkomNode(st::SubtransportLayer& st, rms::PortRegistry& ports, RkomConfig config = {});
  ~RkomNode();
  RkomNode(const RkomNode&) = delete;
  RkomNode& operator=(const RkomNode&) = delete;

  /// Registers the handler for operation code `op`.
  void register_operation(std::uint64_t op, Operation operation);

  /// Invokes operation `op` on `peer`. The callback receives the reply
  /// bytes or an error (timeout, channel failure).
  void call(HostId peer, std::uint64_t op, Bytes args,
            std::function<void(Result<Bytes>)> cb);

  const Stats& stats() const { return stats_; }
  HostId host() const { return st_.host(); }

  /// Number of four-stream channels currently open (tests).
  std::size_t channels() const { return channels_.size(); }

  /// Publishes the client-observed call round-trip distribution
  /// ("rkom.<host>.call_rtt_ns") into `m`; nullptr detaches. The registry
  /// must outlive the node. Counter-style stats are mirrored by
  /// telemetry::collect_rkom instead.
  void set_metrics(telemetry::MetricsRegistry* m);

 private:
  struct Channel {
    std::unique_ptr<rms::Rms> low;   ///< initial requests / replies
    std::unique_ptr<rms::Rms> high;  ///< retransmissions / acks
    bool usable() const { return low != nullptr && high != nullptr; }
  };

  struct PendingCall {
    HostId peer;
    Buffer request_wire;  ///< shared with every (re)transmission's message
    std::function<void(Result<Bytes>)> cb;
    int retries_left;
    sim::TimerHandle retry_timer;  ///< cancelled in O(1) when the reply lands
    Time started = 0;  ///< call() time, for the RTT distribution
  };

  struct CachedReply {
    Buffer wire;  ///< shared with the reply and its retransmissions
    bool executing = false;
    sim::TimerHandle expiry_timer;  ///< cancelled when the client acks
  };

  Channel& channel(HostId peer);
  void handle(rms::Message msg);
  void handle_request(HostId client, std::uint64_t call_id, std::uint64_t op,
                      Bytes args, bool is_retry);
  void handle_reply(HostId server, std::uint64_t call_id, Bytes result);
  void arm_retry(std::uint64_t call_id);

  st::SubtransportLayer& st_;
  rms::PortRegistry& ports_;
  sim::Simulator& sim_;
  RkomConfig config_;
  rms::Port port_;
  std::map<std::uint64_t, Operation> operations_;
  std::map<HostId, Channel> channels_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::map<std::pair<HostId, std::uint64_t>, CachedReply> replies_;
  std::uint64_t next_call_ = 1;
  Stats stats_;
  telemetry::Histogram* call_rtt_hist_ = nullptr;
};

/// User-level request/reply on top of RKOM: named procedures.
class RpcServer {
 public:
  RpcServer(RkomNode& node) : node_(node) {}  // NOLINT

  /// Registers `name`; calls dispatch by a stable hash of the name.
  void handle(const std::string& name, std::function<Bytes(BytesView)> fn,
              Time service_time = 0);

  static std::uint64_t op_id(const std::string& name);

 private:
  RkomNode& node_;
};

class RpcClient {
 public:
  RpcClient(RkomNode& node, HostId server) : node_(node), server_(server) {}

  void call(const std::string& name, Bytes args,
            std::function<void(Result<Bytes>)> cb) {
    node_.call(server_, RpcServer::op_id(name), std::move(args), std::move(cb));
  }

 private:
  RkomNode& node_;
  HostId server_;
};

}  // namespace dash::rkom
