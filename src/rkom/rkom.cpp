#include "rkom/rkom.h"

#include "util/serialize.h"

namespace dash::rkom {
namespace {

constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kRequestRetry = 2;
constexpr std::uint8_t kReply = 3;
constexpr std::uint8_t kReplyAck = 4;

/// Request/reply streams of the RKOM channel (§2.5: "initial request and
/// reply messages in a request/reply protocol should use RMS's with low
/// delay bound"; retransmissions and acks ride high-delay streams).
rms::Request rkom_stream_request(Time delay_a) {
  rms::Params desired;
  desired.capacity = 16 * 1024;
  desired.max_message_size = 4 * 1024;
  desired.delay.type = rms::BoundType::kBestEffort;
  desired.delay.a = delay_a;
  desired.delay.b_per_byte = usec(5);
  desired.bit_error_rate = 1e-6;

  rms::Params acceptable = desired;
  acceptable.capacity = 4 * 1024;
  acceptable.max_message_size = 1024;
  acceptable.delay.a = sec(10);
  acceptable.delay.b_per_byte = msec(1);
  acceptable.bit_error_rate = 1.0;
  return rms::Request{desired, acceptable};
}

Bytes make_request_wire(std::uint8_t type, std::uint64_t call_id, std::uint64_t op,
                        BytesView args) {
  Bytes wire;
  Writer w(wire);
  w.u8(type);
  w.u64(call_id);
  w.u64(op);
  w.bytes(args);
  return wire;
}

}  // namespace

RkomNode::RkomNode(st::SubtransportLayer& st, rms::PortRegistry& ports,
                   RkomConfig config)
    : st_(st), ports_(ports), sim_(st.simulator()), config_(config) {
  ports_.bind(kRkomPort, &port_);
  port_.set_handler([this](rms::Message m) { handle(std::move(m)); });
}

RkomNode::~RkomNode() {
  ports_.unbind(kRkomPort);
  // Outstanding timers capture `this`; cancel them so their closures are
  // destroyed with the node.
  for (auto& [id, pc] : pending_) {
    (void)id;
    sim_.cancel(pc.retry_timer);
  }
  for (auto& [key, cr] : replies_) {
    (void)key;
    sim_.cancel(cr.expiry_timer);
  }
}

void RkomNode::register_operation(std::uint64_t op, Operation operation) {
  operations_[op] = std::move(operation);
}

RkomNode::Channel& RkomNode::channel(HostId peer) {
  auto it = channels_.find(peer);
  if (it != channels_.end()) {
    const Channel& existing = it->second;
    const bool dead = (existing.low != nullptr && existing.low->failed()) ||
                      (existing.high != nullptr && existing.high->failed());
    if (!dead && existing.usable()) return it->second;
    // A stream died (network failure, partition) or creation fell short
    // last time: rebuild the four-stream channel rather than sending into
    // a dead RMS forever.
    channels_.erase(it);
    if (dead) ++stats_.channels_reestablished;
  }
  Channel ch;
  if (auto low = st_.create(rkom_stream_request(config_.low_delay_a),
                            Label{peer, kRkomPort})) {
    ch.low = std::move(low).value();
  }
  if (auto high = st_.create(rkom_stream_request(config_.high_delay_a),
                             Label{peer, kRkomPort})) {
    ch.high = std::move(high).value();
  }
  return channels_.emplace(peer, std::move(ch)).first->second;
}

void RkomNode::set_metrics(telemetry::MetricsRegistry* m) {
  call_rtt_hist_ =
      m == nullptr
          ? nullptr
          : &m->histogram("rkom." + std::to_string(host()) + ".call_rtt_ns");
}

void RkomNode::call(HostId peer, std::uint64_t op, Bytes args,
                    std::function<void(Result<Bytes>)> cb) {
  Channel& ch = channel(peer);
  if (!ch.usable()) {
    cb(make_error(Errc::kNoRoute, "RKOM channel to host " + std::to_string(peer) +
                                      " could not be established"));
    return;
  }
  const std::uint64_t call_id = next_call_++;
  ++stats_.calls;

  PendingCall pending;
  pending.peer = peer;
  pending.request_wire = make_request_wire(kRequest, call_id, op, args);
  pending.cb = std::move(cb);
  pending.retries_left = config_.max_retries;
  pending.started = sim_.now();
  pending_[call_id] = std::move(pending);

  rms::Message m;
  m.data = pending_[call_id].request_wire;
  (void)ch.low->send(std::move(m));  // initial request: low-delay stream
  arm_retry(call_id);
}

void RkomNode::arm_retry(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  it->second.retry_timer = sim_.timer_after(config_.retry_timeout, [this, call_id] {
    auto pit = pending_.find(call_id);
    if (pit == pending_.end()) return;
    PendingCall& pc = pit->second;
    if (pc.retries_left-- <= 0) {
      auto cb = std::move(pc.cb);
      pending_.erase(pit);
      ++stats_.timeouts;
      cb(make_error(Errc::kRmsFailed, "RKOM call timed out"));
      return;
    }
    // Retransmission: high-delay stream, marked as a retry so the server
    // suppresses duplicate execution. Going through channel() (not the raw
    // cache) rebuilds a channel whose streams died with their network, so
    // an in-flight rendezvous survives network death instead of silently
    // retransmitting into a failed RMS until it times out.
    Channel& ch = channel(pc.peer);
    if (ch.high != nullptr && !ch.high->failed()) {
      Buffer wire = pc.request_wire;
      wire.mutate()[0] = static_cast<std::byte>(kRequestRetry);  // copy-on-write
      rms::Message m;
      m.data = std::move(wire);
      ++stats_.request_retransmissions;
      (void)ch.high->send(std::move(m));
    }
    arm_retry(call_id);
  });
}

void RkomNode::handle(rms::Message msg) {
  Reader r(msg.data);
  auto type = r.u8();
  auto call_id = r.u64();
  if (!type || !call_id) return;
  const HostId from = msg.source.host;

  switch (*type) {
    case kRequest:
    case kRequestRetry: {
      auto op = r.u64();
      if (!op) return;
      handle_request(from, *call_id, *op, r.rest(), *type == kRequestRetry);
      break;
    }
    case kReply: {
      handle_reply(from, *call_id, r.rest());
      break;
    }
    case kReplyAck: {
      auto rit = replies_.find({from, *call_id});
      if (rit != replies_.end()) {
        sim_.cancel(rit->second.expiry_timer);
        replies_.erase(rit);
      }
      break;
    }
    default:
      break;
  }
}

void RkomNode::handle_request(HostId client, std::uint64_t call_id, std::uint64_t op,
                              Bytes args, bool is_retry) {
  const auto key = std::make_pair(client, call_id);
  auto cached = replies_.find(key);
  if (cached != replies_.end()) {
    ++stats_.duplicate_requests;
    if (cached->second.executing) return;  // still computing: stay quiet
    // At-most-once: re-send the cached reply on the high-delay stream.
    Channel& ch = channel(client);
    if (ch.high != nullptr) {
      rms::Message m;
      m.data = cached->second.wire;
      ++stats_.reply_retransmissions;
      (void)ch.high->send(std::move(m));
    }
    return;
  }

  auto oit = operations_.find(op);
  if (oit == operations_.end()) return;  // unknown operation: let client retry/timeout
  Operation& operation = oit->second;

  replies_[key].executing = true;
  ++stats_.executions;

  auto finish = [this, key, client, call_id, is_retry](Bytes result) {
    auto rit = replies_.find(key);
    if (rit == replies_.end()) return;
    rit->second.executing = false;
    rit->second.wire = [&] {
      Bytes wire;
      Writer w(wire);
      w.u8(kReply);
      w.u64(call_id);
      w.bytes(result);
      return wire;
    }();

    Channel& ch = channel(client);
    rms::Message m;
    m.data = rit->second.wire;
    // Initial reply goes low-delay; a reply to a retry is itself a
    // retransmission and rides the high-delay stream.
    rms::Rms* stream = is_retry ? ch.high.get() : ch.low.get();
    if (stream != nullptr) (void)stream->send(std::move(m));

    // Evict the at-most-once state if no ack ever arrives.
    sim_.cancel(rit->second.expiry_timer);
    rit->second.expiry_timer =
        sim_.timer_after(config_.reply_cache_ttl, [this, key] {
          auto it = replies_.find(key);
          if (it != replies_.end()) replies_.erase(it);
        });
  };

  if (operation.service_time > 0) {
    // Charge the service time before replying (the kernel operation runs).
    sim_.after(operation.service_time,
               [handler = operation.handler, args = std::move(args), finish]() mutable {
                 finish(handler(args));
               });
  } else {
    finish(operation.handler(args));
  }
}

void RkomNode::handle_reply(HostId server, std::uint64_t call_id, Bytes result) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;  // duplicate reply; ack it again anyway
  auto cb = std::move(it->second.cb);
  sim_.cancel(it->second.retry_timer);  // the retry leaves the pending set now
  if (call_rtt_hist_ != nullptr) {
    call_rtt_hist_->observe(static_cast<std::uint64_t>(sim_.now() - it->second.started));
  }
  pending_.erase(it);
  ++stats_.replies_received;

  // Acknowledge so the server can drop its cached reply (high-delay).
  Channel& ch = channel(server);
  if (ch.high != nullptr) {
    Bytes wire;
    Writer w(wire);
    w.u8(kReplyAck);
    w.u64(call_id);
    rms::Message m;
    m.data = std::move(wire);
    ++stats_.acks_sent;
    (void)ch.high->send(std::move(m));
  }
  cb(std::move(result));
}

// ------------------------------------------------------------------- RPC

std::uint64_t RpcServer::op_id(const std::string& name) {
  // FNV-1a.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void RpcServer::handle(const std::string& name, std::function<Bytes(BytesView)> fn,
                       Time service_time) {
  node_.register_operation(op_id(name),
                           RkomNode::Operation{std::move(fn), service_time});
}

}  // namespace dash::rkom
