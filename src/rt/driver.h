// Wall-clock event-loop driver (DESIGN.md §16).
//
// The whole DASH stack — protocol timers, pacers, adaptive RTO, RACK
// scans, path-manager probes — schedules work on one sim::Simulator. In a
// simulation the engine's clock jumps from event to event; the Driver
// instead slaves that same calendar queue to the host's monotonic clock,
// so every existing timer fires in real time and the unmodified ST /
// RKOM / path-manager code runs over real I/O (the socket-backed
// net::UdpNetwork, src/net/udp).
//
// The loop is the classic reactor: run every simulator event whose time
// has arrived, compute the sleep until Simulator::next_event_time(), and
// epoll-wait on the registered file descriptors for at most that long.
// Socket readiness wakes the loop early; the fd's callback runs between
// event bursts and typically injects new simulator work at the current
// time (a received packet entering the delivery path).
//
// Timebase: the simulator's nanosecond clock is anchored to the monotonic
// clock on the first run_* call (epoch = monotonic_now - sim.now()), so a
// world built at sim time 0 starts "now" and Time values stay one
// currency across the stack. Single-threaded: fd callbacks and simulator
// events all run on the calling thread, exactly like a simulation run.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/result.h"
#include "util/time.h"

namespace dash::rt {

/// Current monotonic clock reading in nanoseconds (CLOCK_MONOTONIC).
Time monotonic_now();

class Driver {
 public:
  /// Counters exported to telemetry ("rt.*", see telemetry/collect.h).
  struct Stats {
    std::uint64_t polls = 0;          ///< epoll waits issued
    std::uint64_t wakeups_io = 0;     ///< polls that returned >= 1 fd event
    std::uint64_t wakeups_timer = 0;  ///< polls that timed out into a timer
    std::uint64_t io_dispatches = 0;  ///< fd callbacks invoked
    std::uint64_t events_run = 0;     ///< simulator events executed under us
    std::uint64_t fds_registered = 0; ///< add_fd calls over the lifetime
    /// Worst observed lateness of a due simulator event (wall time when it
    /// ran minus its scheduled time) — the driver's answer to "how far is
    /// real time from the simulated timing model".
    Time max_lateness = 0;
  };

  /// Receives the ready EPOLL* event mask for its file descriptor.
  using IoCallback = std::function<void(std::uint32_t)>;

  explicit Driver(sim::Simulator& sim);
  ~Driver();
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  sim::Simulator& simulator() { return sim_; }

  /// Registers `fd` for the EPOLL* mask `events` (typically EPOLLIN). The
  /// callback runs on the driver thread between simulator event bursts;
  /// it must not block. One callback per fd; re-adding replaces the mask
  /// and callback.
  Status add_fd(int fd, std::uint32_t events, IoCallback cb);

  /// Changes the event mask of a registered fd (e.g. adding EPOLLOUT while
  /// a send backlog drains).
  Status modify_fd(int fd, std::uint32_t events);

  /// Unregisters `fd`. Safe to call from inside an IoCallback (including
  /// the fd's own). The caller still owns — and closes — the descriptor.
  void remove_fd(int fd);

  /// Wall clock on the simulator's timebase: what sim::Simulator::now()
  /// is about to become. Before the first run_* call this is sim.now().
  Time now() const;

  /// Runs the loop for `wall` nanoseconds of real time: executes due
  /// simulator events, dispatches fd readiness, sleeps the gaps.
  void run_for(Time wall);

  /// Runs until `done()` returns true, or `max_wall` real nanoseconds
  /// elapse. Returns true iff `done()` turned true in time.
  bool run_until(const std::function<bool()>& done, Time max_wall);

  /// Makes the innermost run_* return after the current dispatch.
  void stop() { stopped_ = true; }

  const Stats& stats() const { return stats_; }

 private:
  struct FdEntry {
    IoCallback cb;
    std::uint32_t events = 0;
  };

  void ensure_epoch();
  /// Runs every simulator event due at the current wall reading.
  void advance();
  /// One epoll wait of at most `max_wait` (>= 0), then dispatch.
  void poll_once(Time max_wait);

  sim::Simulator& sim_;
  int epfd_ = -1;
  std::unordered_map<int, FdEntry> fds_;
  Time epoch_ = -1;  ///< monotonic ns corresponding to sim time 0; -1 unset
  bool stopped_ = false;
  Stats stats_;
};

}  // namespace dash::rt
