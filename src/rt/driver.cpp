#include "rt/driver.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace dash::rt {

Time monotonic_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

Driver::Driver(sim::Simulator& sim) : sim_(sim) {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
}

Driver::~Driver() {
  if (epfd_ >= 0) close(epfd_);
}

Status Driver::add_fd(int fd, std::uint32_t events, IoCallback cb) {
  if (epfd_ < 0) return make_error(Errc::kInternal, "epoll unavailable");
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const bool known = fds_.count(fd) != 0;
  if (epoll_ctl(epfd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev) != 0) {
    return make_error(Errc::kInternal,
                      std::string("epoll_ctl: ") + std::strerror(errno));
  }
  fds_[fd] = FdEntry{std::move(cb), events};
  if (!known) ++stats_.fds_registered;
  return Status::ok_status();
}

Status Driver::modify_fd(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return make_error(Errc::kInternal, "fd not registered");
  if (it->second.events == events) return Status::ok_status();
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return make_error(Errc::kInternal,
                      std::string("epoll_ctl mod: ") + std::strerror(errno));
  }
  it->second.events = events;
  return Status::ok_status();
}

void Driver::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  epoll_event ev{};  // non-null for pre-2.6.9 kernels, per epoll_ctl(2)
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
}

void Driver::ensure_epoch() {
  if (epoch_ < 0) epoch_ = monotonic_now() - sim_.now();
}

Time Driver::now() const {
  return epoch_ < 0 ? sim_.now() : monotonic_now() - epoch_;
}

void Driver::advance() {
  const Time wall = now();
  const Time next = sim_.next_event_time();
  if (next != kTimeNever && next <= wall) {
    const Time late = wall - next;
    if (late > stats_.max_lateness) stats_.max_lateness = late;
  }
  const std::uint64_t before = sim_.stats().executed;
  sim_.run_until(wall);
  stats_.events_run += sim_.stats().executed - before;
}

void Driver::poll_once(Time max_wait) {
  constexpr int kMaxEvents = 64;
  epoll_event evs[kMaxEvents];
  if (max_wait < 0) max_wait = 0;
  timespec ts{};
  ts.tv_sec = max_wait / 1'000'000'000;
  ts.tv_nsec = max_wait % 1'000'000'000;
  ++stats_.polls;
  int n = epoll_pwait2(epfd_, evs, kMaxEvents, &ts, nullptr);
  if (n < 0) {
    if (errno != EINTR) stopped_ = true;  // epoll broke; do not spin
    return;
  }
  if (n == 0) {
    ++stats_.wakeups_timer;
    return;
  }
  ++stats_.wakeups_io;
  for (int i = 0; i < n; ++i) {
    // Re-find per dispatch: an earlier callback may have removed this fd.
    auto it = fds_.find(evs[i].data.fd);
    if (it == fds_.end() || !it->second.cb) continue;
    ++stats_.io_dispatches;
    it->second.cb(evs[i].events);
  }
}

void Driver::run_for(Time wall) {
  ensure_epoch();
  stopped_ = false;
  const Time end = now() + wall;
  while (!stopped_) {
    advance();
    const Time current = now();
    if (current >= end) break;
    Time wait = end - current;
    const Time next = sim_.next_event_time();
    if (next != kTimeNever && next - current < wait) wait = next - current;
    poll_once(wait);
  }
}

bool Driver::run_until(const std::function<bool()>& done, Time max_wall) {
  ensure_epoch();
  stopped_ = false;
  const Time end = now() + max_wall;
  for (;;) {
    advance();
    if (done()) return true;
    if (stopped_) return false;
    const Time current = now();
    if (current >= end) return false;
    Time wait = end - current;
    const Time next = sim_.next_event_time();
    if (next != kTimeNever && next - current < wait) wait = next - current;
    poll_once(wait);
  }
}

}  // namespace dash::rt
