// Telemetry exporters (DESIGN.md §8).
//
// Three formats, one source of truth:
//   * JSON lines — one self-describing object per metric / ledger row, for
//     scripts and the perf trajectory (BENCH_*.json uses the same escaping);
//   * report() — a human-readable table for example and bench stdout;
//   * Chrome trace events — converts a sim::Trace into the JSON that
//     chrome://tracing and ui.perfetto.dev load, so a whole simulated run
//     can be inspected on a timeline (one track per trace category).
#pragma once

#include <string>
#include <string_view>

#include "sim/trace.h"
#include "telemetry/ledger.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace dash::telemetry {

/// Escapes `s` for inclusion inside a JSON string literal.
std::string json_escape(std::string_view s);

/// Renders a double as a JSON-safe number (non-finite values become 0).
std::string json_number(double v);

/// One JSON object per line:
///   {"type":"counter","name":"st.1.messages_sent","value":42}
///   {"type":"gauge","name":"netrms.ethernet.bps_headroom","value":1.2e6}
///   {"type":"histogram","name":"st.1.delivery_ns","count":...,"min":...,
///    "max":...,"mean":...,"p50":...,"p95":...,"p99":...,
///    "buckets":[[4,17],...]}   (bucket index, count; zero buckets omitted)
std::string to_jsonl(const MetricsRegistry& m);

/// One JSON object per stream account: contract and observations.
std::string to_jsonl(const GuaranteeLedger& l);

/// Human-readable table of every metric in the registry.
std::string report(const MetricsRegistry& m);

/// Chrome trace-event JSON for the retained trace records, oldest first.
/// Timestamps are microseconds; ties inherit the record order, so `ts` is
/// monotonically non-decreasing. Load via chrome://tracing → Load, or
/// ui.perfetto.dev → Open trace file.
std::string to_chrome_trace(const sim::Trace& t);

/// Writes `content` to `path`, replacing any existing file.
Status write_file(const std::string& path, std::string_view content);

}  // namespace dash::telemetry
