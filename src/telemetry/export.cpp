#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "rms/params.h"

namespace dash::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

std::string histogram_json(const std::string& name, const Histogram& h) {
  std::string out = "{\"type\":\"histogram\",\"name\":\"" + json_escape(name) +
                    "\",\"count\":" + std::to_string(h.count()) +
                    ",\"min\":" + std::to_string(h.min()) +
                    ",\"max\":" + std::to_string(h.max()) +
                    ",\"mean\":" + json_number(h.mean()) +
                    ",\"p50\":" + json_number(h.p50()) +
                    ",\"p95\":" + json_number(h.p95()) +
                    ",\"p99\":" + json_number(h.p99()) + ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(b) + ',' + std::to_string(h.bucket(b)) + ']';
  }
  out += "]}";
  return out;
}

}  // namespace

std::string to_jsonl(const MetricsRegistry& m) {
  std::string out;
  for (const auto& [name, c] : m.counters()) {
    out += "{\"type\":\"counter\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + std::to_string(c.value()) + "}\n";
  }
  for (const auto& [name, g] : m.gauges()) {
    out += "{\"type\":\"gauge\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + json_number(g.value()) + "}\n";
  }
  for (const auto& [name, h] : m.histograms()) {
    out += histogram_json(name, h) + "\n";
  }
  return out;
}

std::string to_jsonl(const GuaranteeLedger& l) {
  std::string out;
  for (const auto& [id, a] : l.accounts()) {
    out += "{\"type\":\"stream\",\"id\":" + std::to_string(a.id) +
           ",\"name\":\"" + json_escape(a.name) +
           "\",\"src\":" + std::to_string(a.src) +
           ",\"dst\":" + std::to_string(a.dst) +
           ",\"bound_type\":\"" + rms::bound_type_name(a.params.delay.type) +
           "\",\"delay_a_ns\":" +
           (a.params.delay.a == kTimeNever ? "null" : std::to_string(a.params.delay.a)) +
           ",\"delay_b_per_byte_ns\":" + std::to_string(a.params.delay.b_per_byte) +
           ",\"capacity\":" + std::to_string(a.params.capacity) +
           ",\"contract_ber\":" + json_number(a.params.bit_error_rate) +
           ",\"sent\":" + std::to_string(a.sent) +
           ",\"delivered\":" + std::to_string(a.delivered) +
           ",\"misses\":" + std::to_string(a.misses) +
           ",\"miss_fraction\":" + json_number(a.miss_fraction()) +
           ",\"capacity_utilization\":" + json_number(a.capacity_utilization()) +
           ",\"observed_error_rate\":" + json_number(a.observed_error_rate()) +
           ",\"delay_p99_ns\":" + json_number(a.delay_ns.p99()) +
           ",\"guarantee_holds\":" + (a.guarantee_holds() ? "true" : "false") + "}\n";
  }
  return out;
}

std::string report(const MetricsRegistry& m) {
  std::string out;
  char line[192];
  if (!m.counters().empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : m.counters()) {
      std::snprintf(line, sizeof(line), "  %-44s %12" PRIu64 "\n", name.c_str(),
                    c.value());
      out += line;
    }
  }
  if (!m.gauges().empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : m.gauges()) {
      std::snprintf(line, sizeof(line), "  %-44s %12.4g\n", name.c_str(), g.value());
      out += line;
    }
  }
  if (!m.histograms().empty()) {
    out += "histograms:                                     "
           "       count      p50 ms      p95 ms      p99 ms      max ms\n";
    for (const auto& [name, h] : m.histograms()) {
      std::snprintf(line, sizeof(line),
                    "  %-44s %12" PRIu64 " %11.3f %11.3f %11.3f %11.3f\n",
                    name.c_str(), h.count(), h.p50() / 1e6, h.p95() / 1e6,
                    h.p99() / 1e6, static_cast<double>(h.max()) / 1e6);
      out += line;
    }
  }
  return out;
}

std::string to_chrome_trace(const sim::Trace& t) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& r : t.chronological()) {
    if (!first) out += ',';
    first = false;
    // Instant events, one timeline track per category (tid by category
    // hash would scatter; Perfetto groups by name of the track via "tid"
    // left constant and the category carried in "cat").
    out += "{\"name\":\"" + json_escape(r.detail) + "\",\"cat\":\"" +
           json_escape(r.category) + "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":1,"
           "\"ts\":" + json_number(static_cast<double>(r.time) / 1e3) + "}";
  }
  out += "]}";
  return out;
}

Status write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_error(Errc::kInternal, "cannot open " + path + " for writing");
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (!ok) return make_error(Errc::kInternal, "short write to " + path);
  return {};
}

}  // namespace dash::telemetry
