// Layer collectors: mirror each layer's local stats into a MetricsRegistry
// (DESIGN.md §8).
//
// Layers keep their cheap local Stats structs on the hot path; a collector
// pass snapshots them into the shared registry under the layer's metric
// prefix just before export. Latency distributions cannot be reconstructed
// from counters, so those are pushed live instead — see
// SubtransportLayer::set_metrics, NetRmsFabric::set_metrics, and
// RkomNode::set_metrics.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.h"
#include "net/ethernet.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "net/internet.h"
#include "net/network.h"
#include "net/udp/udp.h"
#include "rt/driver.h"
#include "netrms/fabric.h"
#include "path/path.h"
#include "path/stripe.h"
#include "rkom/rkom.h"
#include "st/st.h"
#include "telemetry/metrics.h"
#include "transport/stream.h"
#include "userrms/user_rms.h"

namespace dash::telemetry {

/// Generic network counters under "net.<prefix>.*": tx/rx, drops by cause,
/// and the fault-injector impairments the medium applied.
void collect_network(MetricsRegistry& m, const net::Network& n,
                     const std::string& prefix);

/// collect_network plus per-host interface queue depth / drop gauges under
/// "net.<prefix>.host<h>.*".
void collect_ethernet(MetricsRegistry& m, const net::EthernetNetwork& n,
                      const std::string& prefix,
                      const std::vector<net::HostId>& hosts);

/// collect_network plus gateway congestion counters, per-cause drop
/// counters (net.<prefix>.drop.{trunk_full,no_route,access}) and routing
/// engine work (net.<prefix>.route.{recomputes,repairs,routers_touched,
/// recompute_ns}).
void collect_internet(MetricsRegistry& m, const net::InternetNetwork& n,
                      const std::string& prefix);

/// Network-RMS fabric and its admission controller under "netrms.<prefix>.*":
/// stream outcomes, delivery/drop counters, reserved vs available bandwidth
/// and buffer.
void collect_fabric(MetricsRegistry& m, const netrms::NetRmsFabric& f,
                    const std::string& prefix);

/// Subtransport layer under "st.<host>.*": stream/channel lifecycle, cache
/// and piggyback effectiveness, fragmentation and reassembly outcomes,
/// control-channel retries/resets, security work, fast acks.
void collect_st(MetricsRegistry& m, const st::SubtransportLayer& st);

/// RKOM node under "rkom.<host>.*": calls, retries, duplicate suppression,
/// reply caching.
void collect_rkom(MetricsRegistry& m, const rkom::RkomNode& node);

/// Path manager under "path.<host>.*": probe traffic and timeouts, fabric
/// failure notifications, failover outcomes by trigger, downgrades, and
/// probe-RTT / failover-latency distribution summaries.
void collect_path(MetricsRegistry& m, const path::PathManager& pm);

/// Striped-stream sender under "path.stripe.<prefix>.*": dispatch volume,
/// retransmits, subpath deaths, and per-subpath send counts / RTT gauges.
void collect_stripe(MetricsRegistry& m, const path::StripedStream& s,
                    const std::string& prefix);

/// Stripe receiver under "path.stripe.<prefix>.*": reassembly outcomes
/// (delivered, duplicates suppressed, reorder-buffered, window overflow).
void collect_stripe_endpoint(MetricsRegistry& m, const path::StripeEndpoint& e,
                             const std::string& prefix);

/// Congestion-control view of one stream sender under "cc.<prefix>.*"
/// (DESIGN.md §13): pacing rate, bottleneck-bandwidth and min-RTT
/// estimates, model phase, cwnd/inflight, RACK retransmits, quench
/// signals, and the adaptive-RTO state (srtt, rto, sample count). The
/// model gauges are emitted only for CapacityMode::kModel senders; the
/// RTO/retransmission counters cover every mode.
void collect_cc(MetricsRegistry& m, const transport::StreamSender& s,
                const std::string& prefix);

/// Fault injector under "fault.<prefix>.*": scripted impairment counts.
void collect_fault(MetricsRegistry& m, const fault::FaultInjector& f,
                   const std::string& prefix);

/// User-level endpoint under "userrms.<prefix>.*".
void collect_user_endpoint(MetricsRegistry& m, const userrms::UserEndpoint& e,
                           const std::string& prefix);

/// UDP socket backend under "net.<prefix>.*" (DESIGN.md §16): everything
/// collect_network emits plus "net.<prefix>.udp.*" — sockets, datagram and
/// batch counts, EAGAIN parks, peak backlog, and decode failures by cause.
void collect_udp(MetricsRegistry& m, const net::UdpNetwork& n,
                 const std::string& prefix);

/// Wall-clock driver counters under "rt.<prefix>.*": polls, io vs timer
/// wakeups, dispatches, simulator events run under the driver, and the
/// worst observed timer lateness (ns).
void collect_driver(MetricsRegistry& m, const rt::Driver& d,
                    const std::string& prefix = "driver");

/// Event-engine counters under "sim.<prefix>.*": events executed, tasks
/// scheduled inline vs heap-allocated, timers created/cancelled, overflow
/// events, live/peak pending set (DESIGN.md §10).
void collect_sim(MetricsRegistry& m, const sim::Simulator& sim,
                 const std::string& prefix = "engine");

/// Sharded-core counters under "sim.shard.*" (DESIGN.md §14): shard count,
/// lookahead horizon, windows/drains/exchanged/late, each shard's engine
/// under "sim.shard<s>.*", and the aggregate under "sim.total.*".
/// Quiescent-only, like every collector.
void collect_sharded(MetricsRegistry& m, const sim::ShardedSimulator& ssim);

}  // namespace dash::telemetry
