// Per-RMS guarantee accounting (DESIGN.md §8).
//
// Every RMS carries a negotiated contract (§2.2–2.3): a delay bound
// A + B·size with a bound type, a capacity, and a bit error rate. The
// GuaranteeLedger keeps one StreamAccount per live stream and checks the
// observed behaviour against that contract, with verdict rules identical to
// rms::DelayMonitor — so a ledger row and a monitor attached to the same
// port always agree. Unlike DelayMonitor (one stream, Samples-backed), the
// ledger spans all streams and stores delays in O(1) log₂ histograms, so it
// can stay attached for arbitrarily long runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "rms/params.h"
#include "rms/rms.h"
#include "telemetry/metrics.h"

namespace dash::telemetry {

/// The ledger row for one stream: the contract plus everything observed
/// against it.
struct StreamAccount {
  std::uint64_t id = 0;
  std::string name;           ///< human label ("voice 1->2")
  rms::HostId src = 0;
  rms::HostId dst = 0;
  rms::Params params;         ///< the negotiated contract

  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t misses = 0;   ///< deliveries over the delay bound
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t max_outstanding = 0;  ///< peak bytes sent-but-undelivered
  Histogram delay_ns;

  double miss_fraction() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(misses) / static_cast<double>(delivered);
  }

  /// Verdict rules of rms::DelayMonitor::guarantee_holds (§2.3): zero
  /// misses for deterministic, miss fraction within 1 - delay_probability
  /// for statistical, always true for best-effort.
  bool guarantee_holds() const {
    switch (params.delay.type) {
      case rms::BoundType::kDeterministic:
        return misses == 0;
      case rms::BoundType::kStatistical:
        return miss_fraction() <= 1.0 - params.statistical.delay_probability + 1e-9;
      case rms::BoundType::kBestEffort:
        return true;
    }
    return true;
  }

  /// Peak outstanding bytes against the contracted capacity (§2.2: clients
  /// enforce capacity; this shows how close they came).
  double capacity_utilization() const {
    if (params.capacity == 0) return 0.0;
    return static_cast<double>(max_outstanding) / static_cast<double>(params.capacity);
  }

  /// Observed fraction of sent messages never delivered — the quantity the
  /// contracted bit_error_rate bounds ("fraction of messages corrupted or
  /// lost", §2.2). Only meaningful once traffic has drained.
  double observed_error_rate() const {
    if (sent == 0) return 0.0;
    const std::uint64_t lost = sent > delivered ? sent - delivered : 0;
    return static_cast<double>(lost) / static_cast<double>(sent);
  }

  bool ber_holds() const { return observed_error_rate() <= params.bit_error_rate + 1e-12; }
};

class GuaranteeLedger {
 public:
  /// Opens an account for a stream with its negotiated parameters.
  /// Re-opening an existing id resets the account.
  StreamAccount& open(std::uint64_t id, std::string name, rms::Params params,
                      rms::HostId src, rms::HostId dst) {
    StreamAccount& a = accounts_[id];
    a = StreamAccount{};
    a.id = id;
    a.name = std::move(name);
    a.params = std::move(params);
    a.src = src;
    a.dst = dst;
    return a;
  }

  void on_send(std::uint64_t id, std::uint64_t bytes) {
    auto it = accounts_.find(id);
    if (it == accounts_.end()) return;
    StreamAccount& a = it->second;
    ++a.sent;
    a.bytes_sent += bytes;
    const std::uint64_t outstanding = a.bytes_sent - a.bytes_delivered;
    a.max_outstanding = std::max(a.max_outstanding, outstanding);
  }

  void on_delivery(std::uint64_t id, Time delay_ns, std::uint64_t bytes) {
    auto it = accounts_.find(id);
    if (it == accounts_.end()) return;
    StreamAccount& a = it->second;
    ++a.delivered;
    a.bytes_delivered += bytes;
    if (delay_ns >= 0) {
      a.delay_ns.observe(static_cast<std::uint64_t>(delay_ns));
      if (delay_ns > a.params.delay.bound_for(bytes)) ++a.misses;
    }
  }

  /// Wraps `port`'s handler so every delivery is accounted to `id` (the
  /// same chaining idiom as rms::DelayMonitor). The caller's `next`
  /// handler, if any, receives each message afterwards.
  void watch(rms::Port& port, std::uint64_t id, std::function<Time()> now,
             std::function<void(rms::Message)> next = {}) {
    port.set_handler([this, id, now = std::move(now),
                      next = std::move(next)](rms::Message m) {
      if (m.sent_at >= 0) on_delivery(id, now() - m.sent_at, m.size());
      if (next) next(std::move(m));
    });
  }

  StreamAccount* find(std::uint64_t id) {
    auto it = accounts_.find(id);
    return it == accounts_.end() ? nullptr : &it->second;
  }
  const std::map<std::uint64_t, StreamAccount>& accounts() const { return accounts_; }

  std::size_t streams() const { return accounts_.size(); }
  std::uint64_t violations() const {
    std::uint64_t n = 0;
    for (const auto& [id, a] : accounts_) {
      if (!a.guarantee_holds()) ++n;
    }
    return n;
  }

  /// Human-readable per-stream table (defined in ledger.cpp).
  std::string report() const;

  /// Mirrors every account into `m` under "ledger.<name or id>.*".
  void collect(MetricsRegistry& m) const;

 private:
  std::map<std::uint64_t, StreamAccount> accounts_;
};

}  // namespace dash::telemetry
