#include "telemetry/ledger.h"

#include <cinttypes>
#include <cstdio>

namespace dash::telemetry {

std::string GuaranteeLedger::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-20s %-13s %9s %9s %7s %9s %7s %7s %9s\n",
                "stream", "bound", "sent", "delivered", "misses", "p99 ms",
                "cap use", "err", "verdict");
  out += line;
  for (const auto& [id, a] : accounts_) {
    std::snprintf(line, sizeof(line),
                  "%-20s %-13s %9" PRIu64 " %9" PRIu64 " %7" PRIu64
                  " %9.2f %6.0f%% %7.4f %9s\n",
                  a.name.empty() ? std::to_string(a.id).c_str() : a.name.c_str(),
                  rms::bound_type_name(a.params.delay.type), a.sent, a.delivered,
                  a.misses, a.delay_ns.p99() / 1e6, 100.0 * a.capacity_utilization(),
                  a.observed_error_rate(),
                  a.guarantee_holds() ? "holds" : "VIOLATED");
    out += line;
  }
  return out;
}

void GuaranteeLedger::collect(MetricsRegistry& m) const {
  for (const auto& [id, a] : accounts_) {
    const std::string prefix =
        "ledger." + (a.name.empty() ? std::to_string(a.id) : a.name) + ".";
    m.counter(prefix + "sent").set(a.sent);
    m.counter(prefix + "delivered").set(a.delivered);
    m.counter(prefix + "misses").set(a.misses);
    m.counter(prefix + "bytes_sent").set(a.bytes_sent);
    m.counter(prefix + "bytes_delivered").set(a.bytes_delivered);
    m.gauge(prefix + "capacity_utilization").set(a.capacity_utilization());
    m.gauge(prefix + "observed_error_rate").set(a.observed_error_rate());
    m.gauge(prefix + "guarantee_holds").set(a.guarantee_holds() ? 1.0 : 0.0);
    Histogram& h = m.histogram(prefix + "delay_ns");
    h = a.delay_ns;
  }
}

}  // namespace dash::telemetry
