#include "telemetry/collect.h"

namespace dash::telemetry {

void collect_network(MetricsRegistry& m, const net::Network& n,
                     const std::string& prefix) {
  const net::Network::Stats& s = n.stats();
  const std::string p = "net." + prefix + ".";
  m.counter(p + "sent").set(s.sent);
  m.counter(p + "delivered").set(s.delivered);
  m.counter(p + "bytes_delivered").set(s.bytes_delivered);
  m.counter(p + "dropped").set(s.dropped);
  m.counter(p + "dropped_corrupt").set(s.corrupted_dropped);
  m.counter(p + "fault_dropped").set(s.fault_dropped);
  m.counter(p + "fault_partitioned").set(s.fault_partitioned);
  m.counter(p + "fault_delayed").set(s.fault_delayed);
  m.counter(p + "fault_duplicated").set(s.fault_duplicated);
  m.counter(p + "fault_corrupted").set(s.fault_corrupted);
}

void collect_ethernet(MetricsRegistry& m, const net::EthernetNetwork& n,
                      const std::string& prefix,
                      const std::vector<net::HostId>& hosts) {
  collect_network(m, n, prefix);
  const std::string p = "net." + prefix + ".";
  for (net::HostId h : hosts) {
    if (!n.attached(h)) continue;
    const std::string hp = p + "host" + std::to_string(h) + ".";
    m.gauge(hp + "queue_bytes").set(static_cast<double>(n.interface_backlog(h)));
    m.counter(hp + "queue_dropped").set(n.interface_dropped(h));
  }
}

void collect_internet(MetricsRegistry& m, const net::InternetNetwork& n,
                      const std::string& prefix) {
  collect_network(m, n, prefix);
  m.counter("net." + prefix + ".gateway_drops").set(n.gateway_drops());
  const std::string p = "net." + prefix + ".";
  const net::InternetNetwork::DropStats& d = n.drop_stats();
  m.counter(p + "drop.trunk_full").set(d.trunk_full);
  m.counter(p + "drop.no_route").set(d.no_route);
  m.counter(p + "drop.access").set(d.access);
  const net::RoutingEngine::Stats& r = n.routing().stats();
  m.counter(p + "route.recomputes").set(r.full_recomputes);
  m.counter(p + "route.repairs").set(r.repairs);
  m.counter(p + "route.routers_touched").set(r.routers_touched);
  m.counter(p + "route.recompute_ns").set(r.recompute_ns);
}

void collect_fabric(MetricsRegistry& m, const netrms::NetRmsFabric& f,
                    const std::string& prefix) {
  const netrms::NetRmsFabric::Stats& s = f.stats();
  const std::string p = "netrms." + prefix + ".";
  m.counter(p + "streams_created").set(s.streams_created);
  m.counter(p + "streams_rejected").set(s.streams_rejected);
  m.counter(p + "messages_sent").set(s.messages_sent);
  m.counter(p + "messages_delivered").set(s.messages_delivered);
  m.counter(p + "checksum_drops").set(s.checksum_drops);
  m.counter(p + "corrupt_delivered").set(s.corrupt_delivered);
  m.counter(p + "protocol_drops").set(s.protocol_drops);
  m.counter(p + "no_port_drops").set(s.no_port_drops);
  m.counter(p + "out_of_order").set(s.out_of_order);

  // Admission: accepted/rejected and reserved vs available capacity (§2.3).
  const netrms::AdmissionController& a = f.admission();
  m.counter(p + "admitted").set(a.admitted_count());
  m.counter(p + "rejected").set(a.rejected_count());
  m.gauge(p + "reserved_bps").set(a.reserved_bps());
  m.gauge(p + "bps_headroom").set(a.bps_headroom());
  m.gauge(p + "reserved_buffer_bytes").set(static_cast<double>(a.reserved_buffer()));
  m.gauge(p + "utilization")
      .set(a.config().bits_per_second == 0
               ? 0.0
               : a.reserved_bps() / static_cast<double>(a.config().bits_per_second));
}

void collect_st(MetricsRegistry& m, const st::SubtransportLayer& st) {
  const st::SubtransportLayer::Stats& s = st.stats();
  const std::string p = "st." + std::to_string(st.host()) + ".";
  m.counter(p + "st_rms_created").set(s.st_rms_created);
  m.counter(p + "st_rms_rejected").set(s.st_rms_rejected);
  m.counter(p + "net_rms_created").set(s.net_rms_created);
  m.counter(p + "cache_hits").set(s.cache_hits);
  m.counter(p + "cache_invalidations").set(s.cache_invalidations);
  m.counter(p + "mux_joins").set(s.mux_joins);
  m.counter(p + "messages_sent").set(s.messages_sent);
  m.counter(p + "messages_delivered").set(s.messages_delivered);
  m.counter(p + "network_messages").set(s.network_messages);
  m.counter(p + "components_sent").set(s.components_sent);
  m.counter(p + "piggybacked").set(s.piggybacked);
  m.counter(p + "fragments_sent").set(s.fragments_sent);
  m.counter(p + "reassembled").set(s.reassembled);
  m.counter(p + "partials_discarded").set(s.partials_discarded);
  m.counter(p + "partial_fragments_discarded").set(s.partial_fragments_discarded);
  m.counter(p + "partial_bytes_discarded").set(s.partial_bytes_discarded);
  m.counter(p + "stale_dropped").set(s.stale_dropped);
  m.counter(p + "unknown_dropped").set(s.unknown_dropped);
  m.counter(p + "auth_drops").set(s.auth_drops);
  m.counter(p + "auth_handshakes").set(s.auth_handshakes);
  m.counter(p + "auth_elided").set(s.auth_elided);
  m.counter(p + "bytes_encrypted").set(s.bytes_encrypted);
  m.counter(p + "bytes_macced").set(s.bytes_macced);
  m.counter(p + "fast_acks_sent").set(s.fast_acks_sent);
  m.counter(p + "fast_acks_delivered").set(s.fast_acks_delivered);
  m.counter(p + "control_messages").set(s.control_messages);
  m.counter(p + "control_retries").set(s.control_retries);
  m.counter(p + "control_channels_reset").set(s.control_channels_reset);
  m.gauge(p + "active_channels").set(static_cast<double>(st.active_channels()));
  m.gauge(p + "cached_channels").set(static_cast<double>(st.cached_channels()));
}

void collect_rkom(MetricsRegistry& m, const rkom::RkomNode& node) {
  const rkom::RkomNode::Stats& s = node.stats();
  const std::string p = "rkom." + std::to_string(node.host()) + ".";
  m.counter(p + "calls").set(s.calls);
  m.counter(p + "replies_received").set(s.replies_received);
  m.counter(p + "timeouts").set(s.timeouts);
  m.counter(p + "request_retransmissions").set(s.request_retransmissions);
  m.counter(p + "reply_retransmissions").set(s.reply_retransmissions);
  m.counter(p + "duplicate_requests").set(s.duplicate_requests);
  m.counter(p + "executions").set(s.executions);
  m.counter(p + "acks_sent").set(s.acks_sent);
  m.counter(p + "channels_reestablished").set(s.channels_reestablished);
  m.gauge(p + "channels").set(static_cast<double>(node.channels()));
}

void collect_path(MetricsRegistry& m, const path::PathManager& pm) {
  const path::PathManager::Stats& s = pm.stats();
  const std::string p = "path." + std::to_string(pm.host()) + ".";
  m.counter(p + "probes_sent").set(s.probes_sent);
  m.counter(p + "pongs_sent").set(s.pongs_sent);
  m.counter(p + "pongs_received").set(s.pongs_received);
  m.counter(p + "probe_timeouts").set(s.probe_timeouts);
  m.counter(p + "fabric_failures").set(s.fabric_failures);
  m.counter(p + "failovers").set(s.failovers);
  m.counter(p + "failover_failures").set(s.failover_failures);
  m.counter(p + "death_failovers").set(s.death_failovers);
  m.counter(p + "violation_failovers").set(s.violation_failovers);
  m.counter(p + "pressure_sheds").set(s.pressure_sheds);
  m.counter(p + "downgrades").set(s.downgrades);
  m.counter(p + "prepares").set(s.prepares);
  m.counter(p + "prepare_failures").set(s.prepare_failures);
  m.counter(p + "hitless_switches").set(s.hitless_switches);
  m.counter(p + "staged_aborts").set(s.staged_aborts);
  m.counter(p + "upgrades_back").set(s.upgrades_back);
  m.gauge(p + "managed_streams").set(static_cast<double>(pm.managed_streams()));
  // Distribution summaries; full histograms are available live through
  // PathManager::set_metrics.
  m.gauge(p + "probe_rtt_p50_ns").set(pm.probe_rtt().quantile(0.5));
  m.gauge(p + "failover_latency_p50_ns").set(pm.failover_latency().quantile(0.5));
  m.gauge(p + "failover_latency_max_ns")
      .set(static_cast<double>(pm.failover_latency().max()));
}

void collect_stripe(MetricsRegistry& m, const path::StripedStream& s,
                    const std::string& prefix) {
  const path::StripedStream::Stats& st = s.stats();
  const std::string p = "path.stripe." + prefix + ".";
  m.counter(p + "striped").set(st.striped);
  m.counter(p + "retransmits").set(st.retransmits);
  m.counter(p + "rack_retransmits").set(st.rack_retransmits);
  m.counter(p + "acks").set(st.acks);
  m.counter(p + "subpath_deaths").set(st.subpath_deaths);
  m.counter(p + "send_errors").set(st.send_errors);
  m.counter(p + "pace_deferred").set(st.pace_deferred);
  m.gauge(p + "subpaths").set(static_cast<double>(s.subpaths()));
  m.gauge(p + "live_subpaths").set(static_cast<double>(s.live_subpaths()));
  m.gauge(p + "inflight").set(static_cast<double>(s.inflight()));
  for (std::size_t i = 0; i < s.subpaths(); ++i) {
    const std::string sp = p + "subpath" + std::to_string(i) + ".";
    m.counter(sp + "sent").set(s.sent_on(i));
    m.gauge(sp + "ewma_rtt_ns").set(s.subpath_rtt_ns(i));
  }
}

void collect_stripe_endpoint(MetricsRegistry& m, const path::StripeEndpoint& e,
                             const std::string& prefix) {
  const path::StripeEndpoint::Stats& st = e.stats();
  const std::string p = "path.stripe." + prefix + ".";
  m.counter(p + "received").set(st.received);
  m.counter(p + "delivered").set(st.delivered);
  m.counter(p + "duplicates").set(st.duplicates);
  m.counter(p + "buffered").set(st.buffered);
  m.counter(p + "window_overflow").set(st.window_overflow);
  m.counter(p + "malformed").set(st.malformed);
}

void collect_cc(MetricsRegistry& m, const transport::StreamSender& s,
                const std::string& prefix) {
  const transport::StreamSender::Stats& st = s.stats();
  const std::string p = "cc." + prefix + ".";
  m.counter(p + "rtt_samples").set(st.rtt_samples);
  m.counter(p + "rack_retransmits").set(st.rack_retransmits);
  m.counter(p + "quench_signals").set(st.quench_signals);
  m.counter(p + "retransmissions").set(st.retransmissions);
  m.gauge(p + "rto_ns").set(static_cast<double>(s.current_rto()));
  m.gauge(p + "srtt_ns").set(static_cast<double>(s.srtt()));
  const cc::ModelEnforcer* model = s.model();
  if (model == nullptr) return;
  m.gauge(p + "pacing_rate_bps").set(model->pacing_rate_Bps() * 8.0);
  m.gauge(p + "btlbw_bps").set(model->btlbw_Bps() * 8.0);
  m.gauge(p + "min_rtt_ns").set(static_cast<double>(model->min_rtt()));
  m.gauge(p + "cwnd_bytes").set(static_cast<double>(model->cwnd()));
  m.gauge(p + "inflight_bytes").set(static_cast<double>(model->inflight()));
  m.gauge(p + "phase").set(static_cast<double>(model->phase()));
  m.counter(p + "quenches").set(model->quenches());
  m.counter(p + "delivered_bytes").set(model->delivered_bytes());
}

void collect_fault(MetricsRegistry& m, const fault::FaultInjector& f,
                   const std::string& prefix) {
  const fault::FaultInjector::Counters& c = f.counters();
  const std::string p = "fault." + prefix + ".";
  m.counter(p + "examined").set(c.examined);
  m.counter(p + "dropped_iid").set(c.dropped_iid);
  m.counter(p + "dropped_burst").set(c.dropped_burst);
  m.counter(p + "blocked_link").set(c.blocked_link);
  m.counter(p + "blocked_partition").set(c.blocked_partition);
  m.counter(p + "reordered").set(c.reordered);
  m.counter(p + "duplicated").set(c.duplicated);
  m.counter(p + "corrupted").set(c.corrupted);
}

void collect_user_endpoint(MetricsRegistry& m, const userrms::UserEndpoint& e,
                           const std::string& prefix) {
  const userrms::UserEndpoint::Stats& s = e.stats();
  const std::string p = "userrms." + prefix + ".";
  m.counter(p + "delivered").set(s.delivered);
  m.counter(p + "bound_misses").set(s.bound_misses);
}

void collect_udp(MetricsRegistry& m, const net::UdpNetwork& n,
                 const std::string& prefix) {
  collect_network(m, n, prefix);
  const net::UdpNetwork::UdpStats& s = n.udp_stats();
  const std::string p = "net." + prefix + ".udp.";
  m.counter(p + "sockets_opened").set(s.sockets_opened);
  m.counter(p + "datagrams_sent").set(s.datagrams_sent);
  m.counter(p + "datagrams_received").set(s.datagrams_received);
  m.counter(p + "send_batches").set(s.send_batches);
  m.counter(p + "recv_batches").set(s.recv_batches);
  m.counter(p + "send_eagain").set(s.send_eagain);
  m.counter(p + "send_errors").set(s.send_errors);
  m.counter(p + "recv_errors").set(s.recv_errors);
  m.counter(p + "max_send_backlog").set(s.max_send_backlog);
  m.counter(p + "unknown_dst").set(s.unknown_dst);
  m.counter(p + "no_local_socket").set(s.no_local_socket);
  m.counter(p + "oversized").set(s.oversized);
  m.counter(p + "decode_truncated").set(s.decode_truncated);
  m.counter(p + "decode_bad_magic").set(s.decode_bad_magic);
  m.counter(p + "decode_bad_version").set(s.decode_bad_version);
  m.counter(p + "decode_bad_length").set(s.decode_bad_length);
  m.counter(p + "decode_bad_checksum").set(s.decode_bad_checksum);
}

void collect_driver(MetricsRegistry& m, const rt::Driver& d,
                    const std::string& prefix) {
  const rt::Driver::Stats& s = d.stats();
  const std::string p = "rt." + prefix + ".";
  m.counter(p + "polls").set(s.polls);
  m.counter(p + "wakeups_io").set(s.wakeups_io);
  m.counter(p + "wakeups_timer").set(s.wakeups_timer);
  m.counter(p + "io_dispatches").set(s.io_dispatches);
  m.counter(p + "events_run").set(s.events_run);
  m.counter(p + "fds_registered").set(s.fds_registered);
  m.counter(p + "max_lateness_ns").set(
      static_cast<std::uint64_t>(s.max_lateness));
}

void collect_sim(MetricsRegistry& m, const sim::Simulator& sim,
                 const std::string& prefix) {
  const sim::EngineStats& s = sim.stats();
  const std::string p = "sim." + prefix + ".";
  m.counter(p + "events_executed").set(s.executed);
  m.counter(p + "tasks_scheduled").set(s.scheduled);
  m.counter(p + "tasks_inline").set(s.scheduled_inline);
  m.counter(p + "tasks_heap").set(s.scheduled_heap);
  m.counter(p + "timers_created").set(s.timers_created);
  m.counter(p + "timers_cancelled").set(s.timers_cancelled);
  m.counter(p + "overflow_events").set(s.overflow_events);
  m.counter(p + "peak_pending").set(s.peak_pending);
  m.gauge(p + "pending").set(static_cast<double>(sim.pending()));
}

void collect_sharded(MetricsRegistry& m, const sim::ShardedSimulator& ssim) {
  const sim::ShardedStats& s = ssim.stats();
  m.counter("sim.shard.shards").set(ssim.shards());
  m.counter("sim.shard.windows").set(s.windows);
  m.counter("sim.shard.drains").set(s.drains);
  m.counter("sim.shard.exchanged").set(s.exchanged);
  m.counter("sim.shard.late_entries").set(s.late_entries);
  if (ssim.horizon() != kTimeNever) {
    m.counter("sim.shard.horizon_ns").set(static_cast<std::uint64_t>(ssim.horizon()));
  }
  for (sim::ShardId i = 0; i < ssim.shards(); ++i) {
    collect_sim(m, ssim.simulator(i), "shard" + std::to_string(i));
  }
  const sim::EngineStats total = ssim.aggregate_engine_stats();
  m.counter("sim.total.events_executed").set(total.executed);
  m.counter("sim.total.tasks_scheduled").set(total.scheduled);
  m.counter("sim.total.timers_created").set(total.timers_created);
  m.counter("sim.total.timers_cancelled").set(total.timers_cancelled);
  m.counter("sim.total.overflow_events").set(total.overflow_events);
}

}  // namespace dash::telemetry
