// Cross-layer metrics registry (DESIGN.md §8).
//
// Every layer of the stack reports into one MetricsRegistry: named
// counters, gauges, and fixed log₂-bucket latency histograms. The hot path
// is allocation-free — layers resolve a metric by name once (set_metrics /
// collect time) and then touch plain integers; name lookup and string
// assembly happen only at registration and export. Exporters (JSON lines,
// report tables, Chrome trace events) live in telemetry/export.h.
//
// Naming scheme: dot-separated "<layer>.<instance>.<metric>", e.g.
// "net.ethernet.sent", "st.1.delivery_ns", "rkom.2.call_rtt_ns". Metrics
// measured in nanoseconds carry an "_ns" suffix.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dash::telemetry {

/// A monotonically increasing count. `set` exists for collectors that
/// mirror an existing layer-local stats struct into the registry.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (queue depth, headroom, utilization).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Latency histogram with fixed log₂ buckets: bucket 0 holds the value 0,
/// bucket b >= 1 holds values in [2^(b-1), 2^b). 64 buckets cover the whole
/// uint64 range, so observe() never allocates or rebalances. Quantiles are
/// linearly interpolated inside the containing bucket and clamped to the
/// exact observed min/max, which keeps p50/p95/p99 within one power of two
/// of the true value — sufficient for guarantee accounting, and O(1) memory
/// regardless of run length (unlike dash::Samples).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t x) {
    ++count_;
    sum_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    ++buckets_[bucket_of(x)];
  }

  /// Index of the bucket holding `x`.
  static std::size_t bucket_of(std::uint64_t x) {
    return static_cast<std::size_t>(std::bit_width(x));
  }

  /// Lower edge of bucket `b` (inclusive).
  static std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Upper edge of bucket `b` (exclusive; saturates at the top bucket).
  static std::uint64_t bucket_hi(std::size_t b) {
    return b >= kBuckets - 1 ? ~std::uint64_t{0} : std::uint64_t{1} << b;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }

  /// Interpolated quantile, p in [0, 1].
  double quantile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count_ - 1);
    std::uint64_t before = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const double in_bucket = static_cast<double>(buckets_[b]);
      if (target < static_cast<double>(before) + in_bucket) {
        const double frac =
            in_bucket <= 1.0 ? 0.0 : (target - static_cast<double>(before)) / (in_bucket - 1.0);
        const double lo = static_cast<double>(bucket_lo(b));
        const double hi = static_cast<double>(std::min(bucket_hi(b), max()));
        const double v = lo + frac * (hi - lo);
        return std::clamp(v, static_cast<double>(min()), static_cast<double>(max()));
      }
      before += buckets_[b];
    }
    return static_cast<double>(max());
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Folds `other` into this histogram (per-shard registries are merged
  /// into one view at barriers / collection time).
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  /// Interpolated quantile over only the observations made since
  /// `baseline` was copied from this histogram — the windowed view the
  /// path manager uses to judge *recent* delay pressure without the whole
  /// run's history diluting it. `baseline` must be an earlier copy of this
  /// same histogram (bucket counts monotone); min/max clamping falls back
  /// to bucket edges because exact windowed extrema are not tracked.
  double quantile_since(const Histogram& baseline, double p) const {
    const std::uint64_t n = count_ - baseline.count_;
    if (count_ < baseline.count_ || n == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(n - 1);
    std::uint64_t before = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t in = buckets_[b] - baseline.buckets_[b];
      if (in == 0) continue;
      const double in_bucket = static_cast<double>(in);
      if (target < static_cast<double>(before) + in_bucket) {
        const double frac =
            in_bucket <= 1.0 ? 0.0 : (target - static_cast<double>(before)) / (in_bucket - 1.0);
        const double lo = static_cast<double>(bucket_lo(b));
        const double hi = static_cast<double>(std::min(bucket_hi(b), max()));
        return lo + frac * (hi - lo);
      }
      before += in;
    }
    return static_cast<double>(max());
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// The registry: name → metric, one namespace per kind. References returned
/// by counter()/gauge()/histogram() are stable for the registry's lifetime
/// (std::map nodes never move), so layers cache them and increment without
/// further lookups.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Value of a counter, 0 if absent (test convenience).
  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Folds `other` into this registry: counters and gauges add, histograms
  /// merge bucket-wise. Used to combine per-shard registries into the
  /// single exported view (collect_sharded).
  void merge(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) {
      counters_[name].add(c.value());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges_[name].set(gauges_[name].value() + g.value());
    }
    for (const auto& [name, h] : other.histograms_) {
      histograms_[name].merge(h);
    }
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dash::telemetry
