// Communication sessions (paper §3.3).
//
// "In addition to communication using RKOM, user- and kernel-level clients
// can establish their own communication sessions. These sessions typically
// consist of 1) a set of ST RMS's and 2) a set of stream protocols, each of
// which is a kernel-level process."
//
// A Session here is the simplest useful instance: a duplex message channel
// made of two ST RMS (one per direction), established by an RKOM
// rendezvous against a named service. The connect call carries the
// client's receive port and desired RMS parameters; the acceptor allocates
// its own port, opens the reverse stream, and replies with the port the
// client's forward stream should target. Both directions inherit the
// session's RMS parameters, so a real-time duplex channel (voice both
// ways) is one connect() away.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "rkom/rkom.h"
#include "st/st.h"

namespace dash::session {

using rms::HostId;

/// One end of an established duplex session.
class Session {
 public:
  ~Session() { ports_.unbind(local_port_); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Sends a message to the peer end of the session.
  Status send(Bytes data) {
    rms::Message m;
    m.data = std::move(data);
    return out_->send(std::move(m));
  }

  /// Registers the receive handler.
  void on_message(std::function<void(rms::Message)> handler) {
    in_.set_handler(std::move(handler));
  }

  /// Parameters of the outgoing direction.
  const rms::Params& params() const { return out_->params(); }

  HostId peer() const { return peer_; }
  bool failed() const { return out_->failed(); }
  void on_failure(std::function<void(const Error&)> cb) {
    out_->on_failure(std::move(cb));
  }

 private:
  friend class SessionHost;
  Session(rms::PortRegistry& ports, rms::PortId local_port,
          std::unique_ptr<rms::Rms> out, HostId peer)
      : ports_(ports), local_port_(local_port), out_(std::move(out)), peer_(peer) {
    ports_.bind(local_port_, &in_);
  }

  rms::PortRegistry& ports_;
  rms::PortId local_port_;
  rms::Port in_;
  std::unique_ptr<rms::Rms> out_;
  HostId peer_;
};

/// The per-host session service: listens for named services and connects
/// to remote ones. Uses the host's RKOM node for the rendezvous.
class SessionHost {
 public:
  using Acceptor = std::function<void(std::unique_ptr<Session>)>;
  using ConnectCallback = std::function<void(Result<std::unique_ptr<Session>>)>;

  SessionHost(st::SubtransportLayer& st, rms::PortRegistry& ports,
              rkom::RkomNode& rkom);

  /// Exposes `service`: each successful rendezvous hands the acceptor an
  /// established session. The RMS parameters are the connector's.
  void listen(const std::string& service, Acceptor acceptor);
  void unlisten(const std::string& service);

  /// Connects to `service` on `peer`; both directions use `request`.
  void connect(HostId peer, const std::string& service, const rms::Request& request,
               ConnectCallback cb);

 private:
  Bytes handle_open(BytesView args);

  st::SubtransportLayer& st_;
  rms::PortRegistry& ports_;
  rkom::RkomNode& rkom_;
  std::map<std::string, Acceptor> services_;
};

}  // namespace dash::session
