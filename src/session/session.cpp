#include "session/session.h"

#include "util/serialize.h"

namespace dash::session {
namespace {

/// RKOM operation id of the session rendezvous.
const std::uint64_t kOpenOp = rkom::RpcServer::op_id("dash.session.open");

/// Wire: request = {u64 client port, sized service name, sized params blob};
/// reply = {u8 ok, u64 server port}.
Bytes encode_params(const rms::Params& p) {
  Bytes out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>((p.quality.reliable ? 1 : 0) |
                                 (p.quality.authenticated ? 2 : 0) |
                                 (p.quality.privacy ? 4 : 0)));
  w.u64(p.capacity);
  w.u64(p.max_message_size);
  w.u8(static_cast<std::uint8_t>(p.delay.type));
  w.i64(p.delay.a);
  w.i64(p.delay.b_per_byte);
  return out;
}

bool decode_params(Reader& r, rms::Params& p) {
  auto quality = r.u8();
  auto capacity = r.u64();
  auto mms = r.u64();
  auto type = r.u8();
  auto a = r.i64();
  auto b = r.i64();
  if (!quality || !capacity || !mms || !type || !a || !b) return false;
  p.quality.reliable = (*quality & 1) != 0;
  p.quality.authenticated = (*quality & 2) != 0;
  p.quality.privacy = (*quality & 4) != 0;
  p.capacity = *capacity;
  p.max_message_size = *mms;
  p.delay.type = static_cast<rms::BoundType>(*type);
  p.delay.a = *a;
  p.delay.b_per_byte = *b;
  p.bit_error_rate = 1.0;  // sessions leave error tolerance loose
  return true;
}

}  // namespace

SessionHost::SessionHost(st::SubtransportLayer& st, rms::PortRegistry& ports,
                         rkom::RkomNode& rkom)
    : st_(st), ports_(ports), rkom_(rkom) {
  rkom_.register_operation(
      kOpenOp, {[this](BytesView args) { return handle_open(args); }, 0});
}

void SessionHost::listen(const std::string& service, Acceptor acceptor) {
  services_[service] = std::move(acceptor);
}

void SessionHost::unlisten(const std::string& service) { services_.erase(service); }

Bytes SessionHost::handle_open(BytesView args) {
  auto reject = [] {
    Bytes reply;
    Writer w(reply);
    w.u8(0);
    w.u64(0);
    return reply;
  };

  Reader r(args);
  auto client_host = r.u64();
  auto client_port = r.u64();
  auto name = r.sized_bytes();
  if (!client_host || !client_port || !name) return reject();
  rms::Params desired;
  if (!decode_params(r, desired)) return reject();

  auto it = services_.find(to_string(*name));
  if (it == services_.end()) return reject();

  // Reverse direction: this host -> connector, same parameter class.
  rms::Params acceptable = desired;
  acceptable.capacity = std::min<std::uint64_t>(desired.max_message_size, desired.capacity);
  acceptable.delay.a = desired.delay.a == kTimeNever ? kTimeNever : desired.delay.a * 10;
  acceptable.delay.type = rms::BoundType::kBestEffort;
  auto reverse = st_.create({desired, acceptable},
                            rms::Label{*client_host, *client_port});
  if (!reverse) return reject();

  const rms::PortId server_port = ports_.allocate();
  auto session = std::unique_ptr<Session>(new Session(
      ports_, server_port, std::move(reverse).value(), *client_host));
  it->second(std::move(session));

  Bytes reply;
  Writer w(reply);
  w.u8(1);
  w.u64(server_port);
  return reply;
}

void SessionHost::connect(HostId peer, const std::string& service,
                          const rms::Request& request, ConnectCallback cb) {
  const rms::PortId local_port = ports_.allocate();

  Bytes args;
  Writer w(args);
  w.u64(st_.host());
  w.u64(local_port);
  w.sized_bytes(to_bytes(service));
  w.bytes(encode_params(request.desired));

  rkom_.call(peer, kOpenOp, std::move(args),
             [this, peer, local_port, request, cb = std::move(cb)](Result<Bytes> r) {
               if (!r.ok()) {
                 cb(r.error());
                 return;
               }
               Reader reader(r.value());
               auto ok = reader.u8();
               auto server_port = reader.u64();
               if (!ok || *ok == 0 || !server_port) {
                 cb(make_error(Errc::kNoRoute,
                               "peer refused the session (unknown service or "
                               "stream rejection)"));
                 return;
               }
               auto forward = st_.create(request, rms::Label{peer, *server_port});
               if (!forward) {
                 cb(forward.error());
                 return;
               }
               cb(std::unique_ptr<Session>(new Session(
                   ports_, local_port, std::move(forward).value(), peer)));
             });
}

}  // namespace dash::session
