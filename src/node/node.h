// DashNode: one simulated DASH host, fully assembled.
//
// Bundles the pieces every host needs — CPU scheduler, port registry,
// subtransport layer, and (lazily) an RKOM node — so applications,
// examples, and tests don't re-wire the stack by hand. This is the
// intended top-level entry point of the library.
#pragma once

#include <memory>

#include "netrms/fabric.h"
#include "path/path.h"
#include "rkom/rkom.h"
#include "rms/rms.h"
#include "sim/cpu_scheduler.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "st/st.h"

namespace dash::node {

using rms::HostId;
using rms::Label;

struct NodeConfig {
  sim::CpuPolicy cpu_policy = sim::CpuPolicy::kEdf;
  st::StConfig st;
  path::PathConfig path;
  rkom::RkomConfig rkom;
};

class DashNode {
 public:
  DashNode(sim::Simulator& sim, HostId id, NodeConfig config = {})
      : sim_(sim),
        id_(id),
        config_(config),
        cpu_(std::make_unique<sim::CpuScheduler>(sim, config.cpu_policy)),
        st_(std::make_unique<st::SubtransportLayer>(sim, id, *cpu_, ports_,
                                                    config.st)) {
    if (config_.path.enabled) {
      path_ = std::make_unique<path::PathManager>(sim, *st_, ports_, config_.path);
    }
  }

  /// Sharded-run variant: builds the node inside `ctx`'s shard. The whole
  /// stack runs on that shard's engine; only the shard affinity is
  /// recorded beyond what the Simulator& overload does.
  DashNode(sim::ShardContext& ctx, HostId id, NodeConfig config = {})
      : DashNode(ctx.sim(), id, config) {
    shard_ = ctx.shard();
  }

  DashNode(const DashNode&) = delete;
  DashNode& operator=(const DashNode&) = delete;

  /// Attaches this node to a network: registers the host with the fabric
  /// and makes the network available to the subtransport layer (and the
  /// path manager, which scores it as a failover candidate).
  void join(netrms::NetRmsFabric& fabric) {
    fabric.register_host(id_, *cpu_, ports_);
    st_->add_network(fabric);
    if (path_ != nullptr) path_->add_network(fabric);
  }

  /// Creates an ST RMS to `target` (see SubtransportLayer::create).
  Result<std::unique_ptr<rms::Rms>> create_stream(const rms::Request& request,
                                                  const Label& target) {
    return st_->create(request, target);
  }

  /// Binds a receive port. The caller keeps ownership of `port`.
  void bind(rms::PortId id, rms::Port* port) { ports_.bind(id, port); }
  void unbind(rms::PortId id) { ports_.unbind(id); }

  /// The RKOM request/reply endpoint, constructed on first use (§3.3).
  rkom::RkomNode& rkom() {
    if (rkom_ == nullptr) {
      rkom_ = std::make_unique<rkom::RkomNode>(*st_, ports_, config_.rkom);
    }
    return *rkom_;
  }

  HostId id() const { return id_; }
  sim::Simulator& simulator() { return sim_; }
  sim::CpuScheduler& cpu() { return *cpu_; }
  rms::PortRegistry& ports() { return ports_; }
  st::SubtransportLayer& st() { return *st_; }

  /// The path manager; nullptr when NodeConfig::path.enabled is false.
  path::PathManager* path() { return path_.get(); }

  /// Which shard this node lives on (0 in single-engine runs).
  sim::ShardId shard() const { return shard_; }

 private:
  sim::Simulator& sim_;
  HostId id_;
  sim::ShardId shard_ = 0;
  NodeConfig config_;
  rms::PortRegistry ports_;
  std::unique_ptr<sim::CpuScheduler> cpu_;
  std::unique_ptr<st::SubtransportLayer> st_;
  std::unique_ptr<rkom::RkomNode> rkom_;
  // Declared last: destroyed first, so its destructor can still detach the
  // observer from st_ and unbind its probe port from ports_.
  std::unique_ptr<path::PathManager> path_;
};

}  // namespace dash::node
