file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_admission.dir/bench_c6_admission.cpp.o"
  "CMakeFiles/bench_c6_admission.dir/bench_c6_admission.cpp.o.d"
  "bench_c6_admission"
  "bench_c6_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
