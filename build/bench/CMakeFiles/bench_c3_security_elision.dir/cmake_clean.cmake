file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_security_elision.dir/bench_c3_security_elision.cpp.o"
  "CMakeFiles/bench_c3_security_elision.dir/bench_c3_security_elision.cpp.o.d"
  "bench_c3_security_elision"
  "bench_c3_security_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_security_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
