# Empty compiler generated dependencies file for bench_c3_security_elision.
# This may be replaced when dependencies are built.
