file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_bandwidth_bound.dir/bench_c1_bandwidth_bound.cpp.o"
  "CMakeFiles/bench_c1_bandwidth_bound.dir/bench_c1_bandwidth_bound.cpp.o.d"
  "bench_c1_bandwidth_bound"
  "bench_c1_bandwidth_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_bandwidth_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
