# Empty compiler generated dependencies file for bench_c1_bandwidth_bound.
# This may be replaced when dependencies are built.
