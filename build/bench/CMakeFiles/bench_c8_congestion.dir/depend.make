# Empty dependencies file for bench_c8_congestion.
# This may be replaced when dependencies are built.
