file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_congestion.dir/bench_c8_congestion.cpp.o"
  "CMakeFiles/bench_c8_congestion.dir/bench_c8_congestion.cpp.o.d"
  "bench_c8_congestion"
  "bench_c8_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
