file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_multiplexing.dir/bench_f4_multiplexing.cpp.o"
  "CMakeFiles/bench_f4_multiplexing.dir/bench_f4_multiplexing.cpp.o.d"
  "bench_f4_multiplexing"
  "bench_f4_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
