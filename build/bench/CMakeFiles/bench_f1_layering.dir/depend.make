# Empty dependencies file for bench_f1_layering.
# This may be replaced when dependencies are built.
