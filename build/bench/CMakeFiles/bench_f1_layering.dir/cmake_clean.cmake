file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_layering.dir/bench_f1_layering.cpp.o"
  "CMakeFiles/bench_f1_layering.dir/bench_f1_layering.cpp.o.d"
  "bench_f1_layering"
  "bench_f1_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
