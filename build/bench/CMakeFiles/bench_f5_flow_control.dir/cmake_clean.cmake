file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_flow_control.dir/bench_f5_flow_control.cpp.o"
  "CMakeFiles/bench_f5_flow_control.dir/bench_f5_flow_control.cpp.o.d"
  "bench_f5_flow_control"
  "bench_f5_flow_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_flow_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
