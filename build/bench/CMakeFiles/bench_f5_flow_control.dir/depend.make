# Empty dependencies file for bench_f5_flow_control.
# This may be replaced when dependencies are built.
