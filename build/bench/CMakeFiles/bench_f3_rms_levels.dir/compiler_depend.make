# Empty compiler generated dependencies file for bench_f3_rms_levels.
# This may be replaced when dependencies are built.
