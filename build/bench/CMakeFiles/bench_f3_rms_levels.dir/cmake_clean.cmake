file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_rms_levels.dir/bench_f3_rms_levels.cpp.o"
  "CMakeFiles/bench_f3_rms_levels.dir/bench_f3_rms_levels.cpp.o.d"
  "bench_f3_rms_levels"
  "bench_f3_rms_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_rms_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
