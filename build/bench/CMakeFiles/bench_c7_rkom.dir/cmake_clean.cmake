file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_rkom.dir/bench_c7_rkom.cpp.o"
  "CMakeFiles/bench_c7_rkom.dir/bench_c7_rkom.cpp.o.d"
  "bench_c7_rkom"
  "bench_c7_rkom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_rkom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
