# Empty dependencies file for bench_c7_rkom.
# This may be replaced when dependencies are built.
