# Empty dependencies file for bench_f2_architecture.
# This may be replaced when dependencies are built.
