file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_rms_caching.dir/bench_c4_rms_caching.cpp.o"
  "CMakeFiles/bench_c4_rms_caching.dir/bench_c4_rms_caching.cpp.o.d"
  "bench_c4_rms_caching"
  "bench_c4_rms_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_rms_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
