# Empty dependencies file for bench_c4_rms_caching.
# This may be replaced when dependencies are built.
