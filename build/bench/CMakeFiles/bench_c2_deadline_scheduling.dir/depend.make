# Empty dependencies file for bench_c2_deadline_scheduling.
# This may be replaced when dependencies are built.
