file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_deadline_scheduling.dir/bench_c2_deadline_scheduling.cpp.o"
  "CMakeFiles/bench_c2_deadline_scheduling.dir/bench_c2_deadline_scheduling.cpp.o.d"
  "bench_c2_deadline_scheduling"
  "bench_c2_deadline_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_deadline_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
