file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_fragmentation.dir/bench_c5_fragmentation.cpp.o"
  "CMakeFiles/bench_c5_fragmentation.dir/bench_c5_fragmentation.cpp.o.d"
  "bench_c5_fragmentation"
  "bench_c5_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
