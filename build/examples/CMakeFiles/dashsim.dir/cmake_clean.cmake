file(REMOVE_RECURSE
  "CMakeFiles/dashsim.dir/dashsim.cpp.o"
  "CMakeFiles/dashsim.dir/dashsim.cpp.o.d"
  "dashsim"
  "dashsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
