# Empty compiler generated dependencies file for dashsim.
# This may be replaced when dependencies are built.
