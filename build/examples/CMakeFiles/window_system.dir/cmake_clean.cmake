file(REMOVE_RECURSE
  "CMakeFiles/window_system.dir/window_system.cpp.o"
  "CMakeFiles/window_system.dir/window_system.cpp.o.d"
  "window_system"
  "window_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
