file(REMOVE_RECURSE
  "CMakeFiles/video_phone.dir/video_phone.cpp.o"
  "CMakeFiles/video_phone.dir/video_phone.cpp.o.d"
  "video_phone"
  "video_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
