# Empty compiler generated dependencies file for video_phone.
# This may be replaced when dependencies are built.
