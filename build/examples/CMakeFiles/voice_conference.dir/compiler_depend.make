# Empty compiler generated dependencies file for voice_conference.
# This may be replaced when dependencies are built.
