file(REMOVE_RECURSE
  "CMakeFiles/voice_conference.dir/voice_conference.cpp.o"
  "CMakeFiles/voice_conference.dir/voice_conference.cpp.o.d"
  "voice_conference"
  "voice_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
