# Empty dependencies file for test_rkom.
# This may be replaced when dependencies are built.
