file(REMOVE_RECURSE
  "CMakeFiles/test_rkom.dir/test_rkom.cpp.o"
  "CMakeFiles/test_rkom.dir/test_rkom.cpp.o.d"
  "test_rkom"
  "test_rkom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rkom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
