
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rkom.cpp" "tests/CMakeFiles/test_rkom.dir/test_rkom.cpp.o" "gcc" "tests/CMakeFiles/test_rkom.dir/test_rkom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dash_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dash_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netrms/CMakeFiles/dash_netrms.dir/DependInfo.cmake"
  "/root/repo/build/src/st/CMakeFiles/dash_st.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dash_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/rkom/CMakeFiles/dash_rkom.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dash_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dash_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/userrms/CMakeFiles/dash_userrms.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/dash_session.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
