file(REMOVE_RECURSE
  "CMakeFiles/test_rms_params.dir/test_rms_params.cpp.o"
  "CMakeFiles/test_rms_params.dir/test_rms_params.cpp.o.d"
  "test_rms_params"
  "test_rms_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rms_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
