# Empty compiler generated dependencies file for test_rms_params.
# This may be replaced when dependencies are built.
