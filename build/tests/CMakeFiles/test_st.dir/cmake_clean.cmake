file(REMOVE_RECURSE
  "CMakeFiles/test_st.dir/test_st.cpp.o"
  "CMakeFiles/test_st.dir/test_st.cpp.o.d"
  "test_st"
  "test_st.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
