# Empty compiler generated dependencies file for test_st.
# This may be replaced when dependencies are built.
