# Empty compiler generated dependencies file for test_userrms.
# This may be replaced when dependencies are built.
