file(REMOVE_RECURSE
  "CMakeFiles/test_userrms.dir/test_userrms.cpp.o"
  "CMakeFiles/test_userrms.dir/test_userrms.cpp.o.d"
  "test_userrms"
  "test_userrms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_userrms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
