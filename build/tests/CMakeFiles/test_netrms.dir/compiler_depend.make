# Empty compiler generated dependencies file for test_netrms.
# This may be replaced when dependencies are built.
