file(REMOVE_RECURSE
  "CMakeFiles/test_netrms.dir/test_netrms.cpp.o"
  "CMakeFiles/test_netrms.dir/test_netrms.cpp.o.d"
  "test_netrms"
  "test_netrms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netrms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
