file(REMOVE_RECURSE
  "libdash_rkom.a"
)
