file(REMOVE_RECURSE
  "CMakeFiles/dash_rkom.dir/rkom.cpp.o"
  "CMakeFiles/dash_rkom.dir/rkom.cpp.o.d"
  "libdash_rkom.a"
  "libdash_rkom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_rkom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
