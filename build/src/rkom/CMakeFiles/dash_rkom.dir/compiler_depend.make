# Empty compiler generated dependencies file for dash_rkom.
# This may be replaced when dependencies are built.
