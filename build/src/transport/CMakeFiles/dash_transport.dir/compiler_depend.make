# Empty compiler generated dependencies file for dash_transport.
# This may be replaced when dependencies are built.
