file(REMOVE_RECURSE
  "CMakeFiles/dash_transport.dir/stream.cpp.o"
  "CMakeFiles/dash_transport.dir/stream.cpp.o.d"
  "libdash_transport.a"
  "libdash_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
