file(REMOVE_RECURSE
  "libdash_transport.a"
)
