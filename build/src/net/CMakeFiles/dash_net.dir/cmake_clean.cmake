file(REMOVE_RECURSE
  "CMakeFiles/dash_net.dir/ethernet.cpp.o"
  "CMakeFiles/dash_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/dash_net.dir/internet.cpp.o"
  "CMakeFiles/dash_net.dir/internet.cpp.o.d"
  "CMakeFiles/dash_net.dir/link.cpp.o"
  "CMakeFiles/dash_net.dir/link.cpp.o.d"
  "CMakeFiles/dash_net.dir/token_ring.cpp.o"
  "CMakeFiles/dash_net.dir/token_ring.cpp.o.d"
  "CMakeFiles/dash_net.dir/traits.cpp.o"
  "CMakeFiles/dash_net.dir/traits.cpp.o.d"
  "libdash_net.a"
  "libdash_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
