
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/dash_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/dash_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/internet.cpp" "src/net/CMakeFiles/dash_net.dir/internet.cpp.o" "gcc" "src/net/CMakeFiles/dash_net.dir/internet.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/dash_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/dash_net.dir/link.cpp.o.d"
  "/root/repo/src/net/token_ring.cpp" "src/net/CMakeFiles/dash_net.dir/token_ring.cpp.o" "gcc" "src/net/CMakeFiles/dash_net.dir/token_ring.cpp.o.d"
  "/root/repo/src/net/traits.cpp" "src/net/CMakeFiles/dash_net.dir/traits.cpp.o" "gcc" "src/net/CMakeFiles/dash_net.dir/traits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dash_rms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
