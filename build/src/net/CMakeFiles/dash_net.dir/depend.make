# Empty dependencies file for dash_net.
# This may be replaced when dependencies are built.
