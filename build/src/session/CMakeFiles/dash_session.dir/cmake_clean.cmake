file(REMOVE_RECURSE
  "CMakeFiles/dash_session.dir/session.cpp.o"
  "CMakeFiles/dash_session.dir/session.cpp.o.d"
  "libdash_session.a"
  "libdash_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
