file(REMOVE_RECURSE
  "libdash_session.a"
)
