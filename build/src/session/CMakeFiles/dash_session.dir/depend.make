# Empty dependencies file for dash_session.
# This may be replaced when dependencies are built.
