file(REMOVE_RECURSE
  "CMakeFiles/dash_rms.dir/params.cpp.o"
  "CMakeFiles/dash_rms.dir/params.cpp.o.d"
  "libdash_rms.a"
  "libdash_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
