file(REMOVE_RECURSE
  "libdash_rms.a"
)
