# Empty compiler generated dependencies file for dash_rms.
# This may be replaced when dependencies are built.
