file(REMOVE_RECURSE
  "CMakeFiles/dash_netrms.dir/accounting.cpp.o"
  "CMakeFiles/dash_netrms.dir/accounting.cpp.o.d"
  "CMakeFiles/dash_netrms.dir/admission.cpp.o"
  "CMakeFiles/dash_netrms.dir/admission.cpp.o.d"
  "CMakeFiles/dash_netrms.dir/fabric.cpp.o"
  "CMakeFiles/dash_netrms.dir/fabric.cpp.o.d"
  "libdash_netrms.a"
  "libdash_netrms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_netrms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
