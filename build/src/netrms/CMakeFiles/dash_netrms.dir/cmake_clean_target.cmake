file(REMOVE_RECURSE
  "libdash_netrms.a"
)
