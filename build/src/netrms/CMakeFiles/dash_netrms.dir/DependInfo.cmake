
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netrms/accounting.cpp" "src/netrms/CMakeFiles/dash_netrms.dir/accounting.cpp.o" "gcc" "src/netrms/CMakeFiles/dash_netrms.dir/accounting.cpp.o.d"
  "/root/repo/src/netrms/admission.cpp" "src/netrms/CMakeFiles/dash_netrms.dir/admission.cpp.o" "gcc" "src/netrms/CMakeFiles/dash_netrms.dir/admission.cpp.o.d"
  "/root/repo/src/netrms/fabric.cpp" "src/netrms/CMakeFiles/dash_netrms.dir/fabric.cpp.o" "gcc" "src/netrms/CMakeFiles/dash_netrms.dir/fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dash_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dash_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
