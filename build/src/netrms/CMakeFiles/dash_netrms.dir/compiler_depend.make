# Empty compiler generated dependencies file for dash_netrms.
# This may be replaced when dependencies are built.
