# Empty dependencies file for dash_workload.
# This may be replaced when dependencies are built.
