file(REMOVE_RECURSE
  "CMakeFiles/dash_workload.dir/workload.cpp.o"
  "CMakeFiles/dash_workload.dir/workload.cpp.o.d"
  "libdash_workload.a"
  "libdash_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
