file(REMOVE_RECURSE
  "libdash_workload.a"
)
