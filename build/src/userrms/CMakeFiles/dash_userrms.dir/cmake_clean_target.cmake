file(REMOVE_RECURSE
  "libdash_userrms.a"
)
