# Empty dependencies file for dash_userrms.
# This may be replaced when dependencies are built.
