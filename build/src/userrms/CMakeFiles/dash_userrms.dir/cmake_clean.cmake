file(REMOVE_RECURSE
  "CMakeFiles/dash_userrms.dir/user_rms.cpp.o"
  "CMakeFiles/dash_userrms.dir/user_rms.cpp.o.d"
  "libdash_userrms.a"
  "libdash_userrms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_userrms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
