
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/checksum.cpp" "src/util/CMakeFiles/dash_util.dir/checksum.cpp.o" "gcc" "src/util/CMakeFiles/dash_util.dir/checksum.cpp.o.d"
  "/root/repo/src/util/crypto.cpp" "src/util/CMakeFiles/dash_util.dir/crypto.cpp.o" "gcc" "src/util/CMakeFiles/dash_util.dir/crypto.cpp.o.d"
  "/root/repo/src/util/util.cpp" "src/util/CMakeFiles/dash_util.dir/util.cpp.o" "gcc" "src/util/CMakeFiles/dash_util.dir/util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
