file(REMOVE_RECURSE
  "libdash_util.a"
)
