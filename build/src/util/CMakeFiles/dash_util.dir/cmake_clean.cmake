file(REMOVE_RECURSE
  "CMakeFiles/dash_util.dir/checksum.cpp.o"
  "CMakeFiles/dash_util.dir/checksum.cpp.o.d"
  "CMakeFiles/dash_util.dir/crypto.cpp.o"
  "CMakeFiles/dash_util.dir/crypto.cpp.o.d"
  "CMakeFiles/dash_util.dir/util.cpp.o"
  "CMakeFiles/dash_util.dir/util.cpp.o.d"
  "libdash_util.a"
  "libdash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
