file(REMOVE_RECURSE
  "libdash_baseline.a"
)
