file(REMOVE_RECURSE
  "CMakeFiles/dash_baseline.dir/datagram.cpp.o"
  "CMakeFiles/dash_baseline.dir/datagram.cpp.o.d"
  "CMakeFiles/dash_baseline.dir/sliding_window.cpp.o"
  "CMakeFiles/dash_baseline.dir/sliding_window.cpp.o.d"
  "libdash_baseline.a"
  "libdash_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
