file(REMOVE_RECURSE
  "libdash_st.a"
)
