# Empty dependencies file for dash_st.
# This may be replaced when dependencies are built.
