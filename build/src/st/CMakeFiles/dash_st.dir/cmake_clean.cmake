file(REMOVE_RECURSE
  "CMakeFiles/dash_st.dir/st.cpp.o"
  "CMakeFiles/dash_st.dir/st.cpp.o.d"
  "libdash_st.a"
  "libdash_st.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
