# Empty compiler generated dependencies file for dash_sim.
# This may be replaced when dependencies are built.
