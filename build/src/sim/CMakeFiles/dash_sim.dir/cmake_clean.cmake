file(REMOVE_RECURSE
  "CMakeFiles/dash_sim.dir/sim.cpp.o"
  "CMakeFiles/dash_sim.dir/sim.cpp.o.d"
  "libdash_sim.a"
  "libdash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
