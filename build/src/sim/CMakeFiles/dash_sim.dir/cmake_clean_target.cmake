file(REMOVE_RECURSE
  "libdash_sim.a"
)
